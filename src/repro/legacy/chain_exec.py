"""Executing one GEMM chain the way the generated Fortran does.

The op sequence per chain, faithful to Section III-A:

1. local buffer management (``MA_PUSH_GET`` — a small core-time cost);
2. ``DFILL`` — zero the chain's C buffer;
3. for each GEMM in the chain: blocking ``GET_HASH_BLOCK`` of the A
   tile, blocking ``GET_HASH_BLOCK`` of the B tile, then the
   ``dgemm('T','N', ...)`` — the gets are issued *immediately preceding*
   the GEMM call, which is exactly why the paper's Figure 12/13 traces
   show zero communication/computation overlap;
4. for each IF branch whose predicate holds: ``SORT_4`` into a
   temporary, then blocking atomic ``ADD_HASH_BLOCK`` into the Global
   Array — serially, in branch order.

In REAL data mode the NumPy arithmetic actually happens, so the i2
Global Array ends up with verifiable contents.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ga.hash_block import add_hash_block, get_hash_block
from repro.sim.trace import TaskCategory
from repro.tce.subroutine import ChainSpec

__all__ = ["execute_chain"]


def execute_chain(
    cluster, ga, node, thread: int, chain: ChainSpec, on_commit=None, timer=None
):
    """Generator helper: run one chain to completion on one rank.

    ``on_commit``, if given, is invoked synchronously right before the
    publication phase (the SORT_4 / ADD_HASH_BLOCK loop) begins. Up to
    that point the chain has only read shared data and touched private
    buffers, so an aborted attempt leaves no trace and the chain can be
    re-executed wholesale; past it the chain must run to completion.
    ``timer`` is the calling rank's reusable timeline channel; every
    CPU charge in the chain re-arms it instead of allocating a Timeout.
    """
    machine = cluster.machine
    real = cluster.data_mode.value == "real"
    label = f"c{chain.chain_id}"

    # MA_PUSH_GET and friends: local memory management bookkeeping
    yield from node.occupy(machine.legacy_call_overhead_s, timer=timer)

    # DFILL: zero-initialize the C buffer
    yield from node.execute(
        thread,
        TaskCategory.DFILL,
        f"DFILL:{label}",
        machine.zero_fill(chain.c_size),
        timer=timer,
    )
    C: Optional[np.ndarray] = np.zeros((chain.m, chain.n)) if real else None

    for gemm in chain.gemms:
        a_flat = yield from get_hash_block(
            ga,
            node,
            thread,
            gemm.a.tensor.array,
            gemm.a.lo,
            gemm.a.hi,
            label=f"GET_A:{label}.{gemm.position}",
        )
        b_flat = yield from get_hash_block(
            ga,
            node,
            thread,
            gemm.b.tensor.array,
            gemm.b.lo,
            gemm.b.hi,
            label=f"GET_B:{label}.{gemm.position}",
        )
        # per-call bookkeeping (hash lookups, MA stack)
        yield from node.occupy(machine.legacy_call_overhead_s, timer=timer)
        yield from node.execute(
            thread,
            TaskCategory.GEMM,
            f"GEMM:{label}.{gemm.position}",
            machine.gemm(gemm.m, gemm.n, gemm.k),
            meta={"chain": chain.chain_id, "position": gemm.position},
            timer=timer,
        )
        if real:
            a = a_flat.reshape(gemm.k, gemm.m)
            b = b_flat.reshape(gemm.k, gemm.n)
            C += a.T @ b  # dgemm('T', 'N', ...)

    tile = C.reshape(chain.tile_shape) if real else None
    if on_commit is not None:
        on_commit()
    for sw in chain.active_sorts:
        yield from node.execute(
            thread,
            TaskCategory.SORT,
            f"SORT_4:{label}.{sw.sort_index}",
            machine.sort4(chain.c_size),
            timer=timer,
        )
        sorted_flat: Optional[np.ndarray] = None
        if real:
            sorted_flat = np.ascontiguousarray(
                sw.sign * np.transpose(tile, sw.perm)
            ).reshape(-1)
        yield from add_hash_block(
            ga,
            node,
            thread,
            sw.target.tensor.array,
            sw.target.lo,
            sw.target.hi,
            sorted_flat,
            label=f"ADD_HASH_BLOCK:{label}.{sw.sort_index}",
            tag=(chain.level, chain.chain_id, sw.sort_index),
        )

    # MA_POP_STACK
    yield from node.occupy(machine.legacy_call_overhead_s, timer=timer)
