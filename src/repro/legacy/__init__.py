"""The original NWChem coarse-grain-parallel (CGP) execution model.

This is the baseline the paper measures against (the green line of
Figure 9, the traces of Figures 12/13): one MPI rank per core, each rank
stealing whole GEMM chains through the NXTVAL shared counter, executing
each chain with *blocking* ``GET_HASH_BLOCK`` calls issued immediately
before each GEMM — so communication is interleaved with computation but
never overlapped — then performing the IF-guarded SORT_4 +
``ADD_HASH_BLOCK`` sequence serially, with barrier-separated work
levels.
"""

from repro.legacy.runtime import LegacyConfig, LegacyResult, LegacyRuntime
from repro.legacy.chain_exec import execute_chain

__all__ = ["LegacyConfig", "LegacyResult", "LegacyRuntime", "execute_chain"]
