"""The coarse-grain runtime: ranks, levels, and NXTVAL work stealing.

One simulated rank per (node, core), exactly like the original code's
one-MPI-rank-per-core mapping. Work is divided into levels with an
explicit barrier between them; within a level ranks repeatedly call
NXTVAL to atomically claim the next chain — "global work stealing" with
a unit of work of one whole chain (Section III-A / IV-D).

A ``use_nxtval=False`` configuration swaps in a static rank-cyclic chain
assignment, which the load-balancing ablation benchmark uses to isolate
the cost/benefit of the shared counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ga.nxtval import NxtvalServer
from repro.ga.sync import Barrier
from repro.legacy.chain_exec import execute_chain
from repro.sim.cluster import Cluster
from repro.sim.trace import TaskCategory
from repro.tce.subroutine import ChainSpec, Subroutine
from repro.util.errors import ConfigurationError

__all__ = ["LegacyConfig", "LegacyResult", "LegacyRuntime"]


@dataclass(frozen=True)
class LegacyConfig:
    """Knobs of the legacy execution model."""

    #: True: NXTVAL shared-counter stealing (the original behaviour).
    #: False: static rank-cyclic assignment (ablation).
    use_nxtval: bool = True
    #: Home node of the shared counter.
    nxtval_home: int = 0


@dataclass
class LegacyResult:
    """Outcome of one legacy execution."""

    execution_time: float
    n_ranks: int
    n_levels: int
    chains_executed: int
    nxtval_requests: int
    #: chains executed per rank, keyed by (node, thread) — load balance data
    chains_per_rank: dict = field(default_factory=dict)


class LegacyRuntime:
    """Drives a list of work levels over the simulated cluster."""

    def __init__(self, cluster: Cluster, ga, config: Optional[LegacyConfig] = None):
        self.cluster = cluster
        self.ga = ga
        self.config = config or LegacyConfig()

    def execute_subroutine(self, subroutine: Subroutine) -> LegacyResult:
        """Run a single subroutine (one work level)."""
        return self.execute([list(subroutine.chains)])

    def launch(self, levels: list[list[ChainSpec]]):
        """Start executing ``levels``; returns ``(done_event, result)``.

        Use this form to embed a legacy section inside a larger
        simulated program (the NWChem integration driver sequences
        legacy and PaRSEC kernels this way). ``result`` fields other
        than ``execution_time`` are filled in as ranks finish.
        """
        if not levels:
            raise ConfigurationError("need at least one work level")
        cluster = self.cluster
        engine = cluster.engine
        machine = cluster.machine
        ranks = [
            (node, thread)
            for node in cluster.nodes
            for thread in range(cluster.cores_per_node)
        ]
        barrier = Barrier(engine, parties=len(ranks), overhead=machine.barrier_overhead_s)
        # one fresh counter per level, as the original resets per level
        counters = [
            NxtvalServer(self.ga, home_node=self.config.nxtval_home)
            for _ in levels
        ]
        result = LegacyResult(
            execution_time=0.0,
            n_ranks=len(ranks),
            n_levels=len(levels),
            chains_executed=0,
            nxtval_requests=0,
        )
        done = engine.event()
        state = {"remaining": len(ranks)}

        def rank_wrapper(rank_id, node, thread):
            yield from self._rank_loop(
                rank_id, node, thread, levels, counters, barrier, result
            )
            state["remaining"] -= 1
            if state["remaining"] == 0:
                result.nxtval_requests = sum(c.total_requests for c in counters)
                done.succeed(result)

        for rank_id, (node, thread) in enumerate(ranks):
            engine.process(
                rank_wrapper(rank_id, node, thread), name=f"legacy.rank{rank_id}"
            )
        return done, result

    def execute(self, levels: list[list[ChainSpec]]) -> LegacyResult:
        """Run ``levels`` to completion; returns timing and stats.

        Chains are only stealable within their level — the barrier
        between levels means "the number of chains available for
        parallel execution at any time is a subset of the total".
        """
        start_time = self.cluster.engine.now
        done, result = self.launch(levels)
        result.execution_time = self.cluster.run() - start_time
        if not done.triggered:
            raise ConfigurationError("legacy execution stalled before completing")
        return result

    # ------------------------------------------------------------------
    def _rank_loop(self, rank_id, node, thread, levels, counters, barrier, result):
        key = (node.node_id, thread)
        result.chains_per_rank.setdefault(key, 0)
        n_ranks = barrier.parties
        for level_chains, counter in zip(levels, counters):
            if self.config.use_nxtval:
                while True:
                    t_start = self.cluster.engine.now
                    ticket = yield from counter.next(node.node_id)
                    node.trace.record(
                        node.node_id,
                        thread,
                        TaskCategory.NXTVAL,
                        f"NXTVAL#{ticket}",
                        t_start,
                        self.cluster.engine.now,
                    )
                    if ticket >= len(level_chains):
                        break
                    yield from execute_chain(
                        self.cluster, self.ga, node, thread, level_chains[ticket]
                    )
                    result.chains_executed += 1
                    result.chains_per_rank[key] += 1
            else:
                for index in range(rank_id, len(level_chains), n_ranks):
                    yield from execute_chain(
                        self.cluster, self.ga, node, thread, level_chains[index]
                    )
                    result.chains_executed += 1
                    result.chains_per_rank[key] += 1
            t_start = self.cluster.engine.now
            yield from barrier.arrive()
            node.trace.record(
                node.node_id,
                thread,
                TaskCategory.BARRIER,
                "GA_Sync",
                t_start,
                self.cluster.engine.now,
            )
