"""The coarse-grain runtime: ranks, levels, and NXTVAL work stealing.

One simulated rank per (node, core), exactly like the original code's
one-MPI-rank-per-core mapping. Work is divided into levels with an
explicit barrier between them; within a level ranks repeatedly call
NXTVAL to atomically claim the next chain — "global work stealing" with
a unit of work of one whole chain (Section III-A / IV-D).

A ``use_nxtval=False`` configuration swaps in a static rank-cyclic chain
assignment, which the load-balancing ablation benchmark uses to isolate
the cost/benefit of the shared counter.

Fault tolerance: under an installed :class:`~repro.sim.faults.FaultPlan`
the NXTVAL counter doubles as the recovery mechanism — exactly what
makes work stealing robust. A rank that dies mid-chain hands its
claimed-but-uncommitted ticket back to the counter
(:meth:`~repro.ga.nxtval.NxtvalServer.reissue`), spawns a recovery
claim-loop on a surviving node so the orphan is re-claimed even if all
survivors have already left the claim phase, then withdraws from the
level barrier so the remaining ranks are not held hostage. Static
assignment has no such channel, so crash plans require ``use_nxtval``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ga.nxtval import NxtvalServer
from repro.ga.sync import Barrier
from repro.legacy.chain_exec import execute_chain
from repro.obs.result import RunResult
from repro.sim.cluster import Cluster
from repro.sim.faults import killable
from repro.sim.timeline import KIND_TASK
from repro.sim.trace import TaskCategory
from repro.tce.subroutine import ChainSpec, Subroutine
from repro.util.errors import ConfigurationError

__all__ = ["LegacyConfig", "LegacyResult", "LegacyRuntime"]


@dataclass(frozen=True)
class LegacyConfig:
    """Knobs of the legacy execution model."""

    #: True: NXTVAL shared-counter stealing (the original behaviour).
    #: False: static rank-cyclic assignment (ablation).
    use_nxtval: bool = True
    #: Home node of the shared counter.
    nxtval_home: int = 0


@dataclass
class LegacyResult(RunResult):
    """Outcome of one legacy execution."""

    execution_time: float
    n_ranks: int
    n_levels: int
    chains_executed: int
    nxtval_requests: int
    #: chains executed per rank, keyed by (node, thread) — load balance data
    chains_per_rank: dict = field(default_factory=dict)
    # recovery counters (nonzero only under an installed FaultPlan)
    task_retries: int = 0
    chains_recovered: int = 0
    tickets_reissued: int = 0
    ranks_lost: int = 0
    recovery_overhead_s: float = 0.0

    _recovery_fields = (
        "task_retries",
        "chains_recovered",
        "tickets_reissued",
        "ranks_lost",
        "recovery_overhead_s",
    )

    @property
    def n_tasks(self) -> int:
        """The legacy unit of work is one whole chain."""
        return self.chains_executed

    @property
    def runtime_name(self) -> str:
        return "legacy"


class LegacyRuntime:
    """Drives a list of work levels over the simulated cluster."""

    def __init__(self, cluster: Cluster, ga, config: Optional[LegacyConfig] = None):
        self.cluster = cluster
        self.ga = ga
        self.config = config or LegacyConfig()

    def execute_subroutine(self, subroutine: Subroutine) -> LegacyResult:
        """Run a single subroutine (one work level)."""
        return self.execute([list(subroutine.chains)])

    def launch(self, levels: list[list[ChainSpec]]):
        """Start executing ``levels``; returns ``(done_event, result)``.

        Use this form to embed a legacy section inside a larger
        simulated program (the NWChem integration driver sequences
        legacy and PaRSEC kernels this way). ``result`` fields other
        than ``execution_time`` are filled in as ranks finish.
        """
        if not levels:
            raise ConfigurationError("need at least one work level")
        cluster = self.cluster
        if (
            cluster.faults is not None
            and cluster.faults.plan.crashes
            and not self.config.use_nxtval
        ):
            raise ConfigurationError(
                "node-crash fault plans require use_nxtval=True: static "
                "chain assignment has no channel to re-claim a dead "
                "rank's work"
            )
        engine = cluster.engine
        machine = cluster.machine
        ranks = [
            (node, thread)
            for node in cluster.nodes
            for thread in range(cluster.cores_per_node)
        ]
        barrier = Barrier(engine, parties=len(ranks), overhead=machine.barrier_overhead_s)
        # one fresh counter per level, as the original resets per level
        counters = [
            NxtvalServer(self.ga, home_node=self.config.nxtval_home)
            for _ in levels
        ]
        result = LegacyResult(
            execution_time=0.0,
            n_ranks=len(ranks),
            n_levels=len(levels),
            chains_executed=0,
            nxtval_requests=0,
        )
        done = engine.event()
        state = {"remaining": len(ranks)}

        def rank_wrapper(rank_id, node, thread):
            yield from self._rank_loop(
                rank_id, node, thread, levels, counters, barrier, result
            )
            state["remaining"] -= 1
            if state["remaining"] == 0:
                result.nxtval_requests = sum(c.total_requests for c in counters)
                done.succeed(result)

        for rank_id, (node, thread) in enumerate(ranks):
            engine.process(
                rank_wrapper(rank_id, node, thread), name=f"legacy.rank{rank_id}"
            )
        return done, result

    def execute(self, levels: list[list[ChainSpec]]) -> LegacyResult:
        """Run ``levels`` to completion; returns timing and stats.

        Chains are only stealable within their level — the barrier
        between levels means "the number of chains available for
        parallel execution at any time is a subset of the total".
        """
        start_time = self.cluster.engine.now
        faults = self.cluster.faults
        before = faults.report.snapshot() if faults is not None else None
        done, result = self.launch(levels)
        result.execution_time = self.cluster.run() - start_time
        if not done.triggered:
            raise ConfigurationError("legacy execution stalled before completing")
        if faults is not None:
            delta = faults.report.delta(before)
            result.task_retries = delta.task_retries
            result.chains_recovered = delta.chains_recovered
            result.tickets_reissued = delta.tickets_reissued
            result.ranks_lost = delta.ranks_lost
            result.recovery_overhead_s = delta.recovery_overhead_s
        return result

    # ------------------------------------------------------------------
    def _rank_loop(self, rank_id, node, thread, levels, counters, barrier, result):
        key = (node.node_id, thread)
        result.chains_per_rank.setdefault(key, 0)
        n_ranks = barrier.parties
        # one reusable timeline channel per rank: every CPU charge in
        # every chain this rank executes re-arms the same slot
        timer = self.cluster.engine.timeline.timer(KIND_TASK, node=node.node_id)
        for level_chains, counter in zip(levels, counters):
            if not node.alive:
                # this rank's compute died between levels
                yield from self._rank_died(
                    node, level_chains, counter, result, None, barrier
                )
                return
            if self.config.use_nxtval:
                survived, lost_ticket = yield from self._claim_loop(
                    node, thread, level_chains, counter, result, key, timer=timer
                )
                if not survived:
                    yield from self._rank_died(
                        node, level_chains, counter, result, lost_ticket, barrier
                    )
                    return
            else:
                for index in range(rank_id, len(level_chains), n_ranks):
                    yield from self._run_chain(
                        node, thread, level_chains[index], result, key, timer=timer
                    )
            t_start = self.cluster.engine.now
            yield from barrier.arrive()
            metrics = self.cluster.metrics
            if metrics.enabled:
                metrics.inc("legacy.barrier_waits")
                metrics.observe(
                    "legacy.barrier_wait_s", self.cluster.engine.now - t_start
                )
            node.trace.record(
                node.node_id,
                thread,
                TaskCategory.BARRIER,
                "GA_Sync",
                t_start,
                self.cluster.engine.now,
            )

    def _claim_loop(
        self,
        node,
        thread,
        level_chains,
        counter,
        result,
        key,
        recovering=False,
        timer=None,
    ):
        """NXTVAL claim loop for one level on one rank.

        Returns ``(survived, lost_ticket)``: ``survived`` is False when
        the rank's node died during the loop, and ``lost_ticket`` is the
        ticket it had claimed but not committed (None if none was lost —
        an in-flight chain past its commit point runs to completion even
        on a dead node, so its ticket is not orphaned).
        """
        while True:
            t_start = self.cluster.engine.now
            ticket = yield from counter.next(node.node_id)
            node.trace.record(
                node.node_id,
                thread,
                TaskCategory.NXTVAL,
                f"NXTVAL#{ticket}",
                t_start,
                self.cluster.engine.now,
            )
            if ticket >= len(level_chains):
                return True, None
            if not node.alive:
                # died while the request was in flight: claimed, no work done
                return False, ticket
            completed = yield from self._run_chain(
                node,
                thread,
                level_chains[ticket],
                result,
                key,
                recovering=recovering,
                timer=timer,
            )
            if not completed:
                return False, ticket
            if not node.alive:
                # committed chain finished on a dead node; stop claiming
                return False, None

    def _run_chain(
        self, node, thread, chain, result, key, recovering=False, timer=None
    ):
        """Run one chain with fault handling; returns True if completed.

        Injected transient failures retry the chain from scratch (its
        pre-commit phase has no side effects). A node crash kills the
        chain at its next yield unless it has already passed its commit
        point, in which case it runs to completion — the blocking GA
        calls still work because the crash model only stops compute.
        """
        faults = self.cluster.faults
        if faults is not None:
            attempt = 0
            while faults.plan.task_fails(f"chain:{chain.chain_id}", attempt):
                faults.note_task_retry()
                if faults.plan.task_fail_detect_s > 0:
                    yield self.cluster.engine.timeout(faults.plan.task_fail_detect_s)
                attempt += 1
        committed = [False]
        body = execute_chain(
            self.cluster,
            self.ga,
            node,
            thread,
            chain,
            on_commit=lambda: committed.__setitem__(0, True),
            timer=timer,
        )
        if faults is None:
            yield from body
            completed = True
        else:
            completed = yield from killable(
                body, lambda: not node.alive and not committed[0]
            )
        if completed:
            result.chains_executed += 1
            result.chains_per_rank[key] += 1
            metrics = self.cluster.metrics
            if metrics.enabled:
                metrics.inc("legacy.chains_executed")
                metrics.inc("legacy.chain_gemms", len(chain.gemms))
            if recovering:
                faults.report.chains_recovered += 1
        return completed

    def _rank_died(self, node, level_chains, counter, result, lost_ticket, barrier):
        """Wind down a dead rank: reissue, recover, leave the barrier."""
        faults = self.cluster.faults
        faults.report.ranks_lost += 1
        if lost_ticket is not None and lost_ticket < len(level_chains):
            counter.reissue(lost_ticket)
            faults.report.tickets_reissued += 1
            # The orphaned ticket must be re-claimed even if every
            # survivor has already drained the counter and moved to the
            # barrier — so run a recovery claim loop on a survivor and
            # hold this rank's barrier slot until it finishes.
            worker = self.cluster.engine.process(
                self._recovery_worker(level_chains, counter, result),
                name=f"legacy.recovery:{counter.inbox_name}",
            )
            yield worker
        barrier.withdraw(1)

    def _recovery_worker(self, level_chains, counter, result):
        """Claim-loop on a surviving node until the counter is drained.

        Runs on a thread lane above the worker cores so its trace row
        does not collide with the node's own ranks. If the chosen
        survivor itself dies mid-recovery, the loop reissues and moves
        to the next survivor.
        """
        faults = self.cluster.faults
        while True:
            alive = [n for n in self.cluster.nodes if n.alive]
            if not alive:
                return  # total loss; the stall report will say so
            node = alive[0]
            thread = self.cluster.cores_per_node + 1
            key = (node.node_id, thread)
            result.chains_per_rank.setdefault(key, 0)
            survived, lost = yield from self._claim_loop(
                node, thread, level_chains, counter, result, key, recovering=True
            )
            if survived:
                return
            if lost is not None and lost < len(level_chains):
                counter.reissue(lost)
                faults.report.tickets_reissued += 1
