"""Tensor Contraction Engine (TCE) substrate.

The paper's workload is the TCE-generated ``icsd_t2_7()`` subroutine of
NWChem's iterative CCSD: deep loop nests over *tiles* of the occupied
(hole) and virtual (particle) orbital spaces, with IF-guarded chains of
GEMMs whose output is SORTed (permuted) and accumulated into a Global
Array. This package rebuilds that workload generator:

- :mod:`repro.tce.orbital_space` — tiled hole/particle spaces;
- :mod:`repro.tce.tensor` — block tensors laid out flat in a GA;
- :mod:`repro.tce.subroutine` — the chain/GEMM/SORT/WRITE IR both
  runtimes execute;
- :mod:`repro.tce.t2_7` — the ``icsd_t2_7`` generator: chains over the
  contracted tile pairs, the four non-mutually-exclusive IF-guarded
  SORT_4 targets, and a TCE-style symmetry filter that voids some loop
  iterations (what the PaRSEC inspection phase discovers);
- :mod:`repro.tce.molecules` — the beta-carotene/6-31G system of the
  evaluation (472 basis functions) plus scaled-down test systems;
- :mod:`repro.tce.reference` — an independent dense-NumPy re-computation
  of the subroutine semantics and the correlation-energy probe used for
  the "matches to the 14th digit" check.
"""

from repro.tce.orbital_space import OrbitalSpace, Tile
from repro.tce.tensor import BlockLayout, BlockTensor
from repro.tce.subroutine import BlockRef, ChainSpec, GemmOp, SortWrite, Subroutine
from repro.tce.molecules import MoleculeSystem, beta_carotene, tiny_system, small_system
from repro.tce.terms import TermBuilder, TermSpec, build_term
from repro.tce.cc_iteration import CcsdIteration, build_ccsd_iteration
from repro.tce.t2_7 import T27Workload, build_t2_7
from repro.tce.reference import compute_reference, correlation_energy

__all__ = [
    "OrbitalSpace",
    "Tile",
    "BlockLayout",
    "BlockTensor",
    "BlockRef",
    "ChainSpec",
    "GemmOp",
    "SortWrite",
    "Subroutine",
    "MoleculeSystem",
    "beta_carotene",
    "tiny_system",
    "small_system",
    "TermBuilder",
    "TermSpec",
    "build_term",
    "CcsdIteration",
    "build_ccsd_iteration",
    "T27Workload",
    "build_t2_7",
    "compute_reference",
    "correlation_energy",
]
