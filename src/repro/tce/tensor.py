"""Block tensors laid out flat inside a Global Array.

A :class:`BlockTensor` is an N-index tensor whose every index runs over
the tiles of one orbital kind. Each tile block is stored contiguously
(row-major within the block) at a fixed offset of a flat
:class:`~repro.ga.array.GlobalArray` — the same "hashed block" layout
the TCE code addresses through ``GET_HASH_BLOCK``/``ADD_HASH_BLOCK``.
Because the GA distributes *elements* contiguously across nodes, a block
can straddle node memories, which is what forces the multi-instance
WRITE_C tasks of the paper's Figure 8.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional

import numpy as np

from repro.tce.orbital_space import OrbitalSpace, Tile
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = ["BlockLayout", "BlockTensor"]

BlockKey = tuple[int, ...]


class BlockLayout:
    """Offset table mapping block keys to flat element ranges.

    ``dims`` is a string of tile kinds, one letter per tensor index
    (e.g. ``"hphh"``); ``keep`` optionally drops blocks (symmetry
    restriction). Blocks are enumerated in lexicographic key order, so
    layouts are deterministic.
    """

    def __init__(
        self,
        space: OrbitalSpace,
        dims: str,
        keep: Optional[Callable[[BlockKey], bool]] = None,
    ) -> None:
        if not dims:
            raise ConfigurationError("tensor needs at least one index")
        self.space = space
        self.dims = dims
        self._tile_lists: list[tuple[Tile, ...]] = [space.tiles(k) for k in dims]
        self._offsets: dict[BlockKey, int] = {}
        self._shapes: dict[BlockKey, tuple[int, ...]] = {}
        self._sizes: dict[BlockKey, int] = {}
        cursor = 0
        for key in self._iter_keys():
            if keep is not None and not keep(key):
                continue
            shape = tuple(
                self._tile_lists[axis][tile].size for axis, tile in enumerate(key)
            )
            self._offsets[key] = cursor
            self._shapes[key] = shape
            size = math.prod(shape)
            self._sizes[key] = size
            cursor += size
        self.total = cursor

    def _iter_keys(self) -> Iterable[BlockKey]:
        def rec(prefix: tuple[int, ...], axis: int):
            if axis == len(self._tile_lists):
                yield prefix
                return
            for tile_index in range(len(self._tile_lists[axis])):
                yield from rec(prefix + (tile_index,), axis + 1)

        yield from rec((), 0)

    # ------------------------------------------------------------------
    def __contains__(self, key: BlockKey) -> bool:
        return key in self._offsets

    def keys(self) -> list[BlockKey]:
        """All stored block keys in layout order."""
        return list(self._offsets)

    def block_shape(self, key: BlockKey) -> tuple[int, ...]:
        """Per-axis tile sizes of one stored block."""
        try:
            return self._shapes[key]
        except KeyError:
            raise ConfigurationError(f"block {key} not stored in layout {self.dims}") from None

    def block_size(self, key: BlockKey) -> int:
        """Element count of one stored block."""
        try:
            return self._sizes[key]
        except KeyError:
            raise ConfigurationError(
                f"block {key} not stored in layout {self.dims}"
            ) from None

    def block_range(self, key: BlockKey) -> tuple[int, int]:
        """Flat ``[lo, hi)`` element range of one stored block."""
        try:
            lo = self._offsets[key]
        except KeyError:
            raise ConfigurationError(f"block {key} not stored in layout {self.dims}") from None
        return lo, lo + self.block_size(key)

    @property
    def n_blocks(self) -> int:
        return len(self._offsets)


class BlockTensor:
    """A named block tensor bound to a Global Array.

    Create through :meth:`create`, which allocates the backing GA with
    the element-contiguous node distribution.
    """

    def __init__(self, name: str, layout: BlockLayout, array) -> None:
        self.name = name
        self.layout = layout
        self.array = array

    @classmethod
    def create(
        cls,
        ga_runtime,
        name: str,
        space: OrbitalSpace,
        dims: str,
        keep: Optional[Callable[[BlockKey], bool]] = None,
    ) -> "BlockTensor":
        """Allocate a tensor named ``name`` with index kinds ``dims``."""
        layout = BlockLayout(space, dims, keep)
        array = ga_runtime.create(name, layout.total)
        return cls(name, layout, array)

    # -- layout passthrough ------------------------------------------------
    def block_range(self, key: BlockKey) -> tuple[int, int]:
        return self.layout.block_range(key)

    def block_shape(self, key: BlockKey) -> tuple[int, ...]:
        return self.layout.block_shape(key)

    def block_size(self, key: BlockKey) -> int:
        return self.layout.block_size(key)

    @property
    def total(self) -> int:
        return self.layout.total

    # -- data conveniences (setup/verification; not cost-modeled) -----------
    def fill_random(self, rng: RngStream, scale: float = 1.0) -> None:
        """Fill the whole tensor with seeded standard-normal data."""
        if not self.array.holds_data:
            return
        self.array.scatter(scale * rng.standard_normal(self.total))

    def block_values(self, key: BlockKey) -> np.ndarray:
        """Copy of one block as an ndarray of its block shape."""
        lo, hi = self.block_range(key)
        flat = self.array.gather()[lo:hi]
        return flat.reshape(self.block_shape(key))

    def flat_values(self) -> np.ndarray:
        """Copy of the whole flat tensor contents."""
        return self.array.gather()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockTensor({self.name!r}, dims={self.layout.dims!r}, "
            f"blocks={self.layout.n_blocks}, total={self.total})"
        )
