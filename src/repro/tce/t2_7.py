"""The ``icsd_t2_7()`` workload — the sub-kernel the paper ports.

``icsd_t2_7`` is a *ring* contraction: one hole (h7) and one particle
(p5) index are contracted between an integral-like operand
``va(h7, p5, p3, p4)`` and an amplitude-like operand
``tb(h7, p5, h1, h2)``, accumulating into the ``i2(p3, p4, h1, h2)``
residual:

- one GEMM *chain* per driving tile tuple ``(p3b <= p4b, h1b <= h2b)``
  (L1 in the paper's PTG), summing over the contracted tile pairs
  ``(h7b, p5b)`` (L2):  ``C(p3p4, h1h2) += va-block(k,m)^T @ tb-block(k,n)``
- after the chain, the four SORT_4/ADD_HASH_BLOCK branches guarded by
  the exact predicates quoted in the paper::

      IF ((p3b .le. p4b) .and. (h1b .le. h2b)) ...
      IF ((p3b .le. p4b) .and. (h2b .le. h1b)) ...
      IF ((p4b .le. p3b) .and. (h1b .le. h2b)) ...
      IF ((p4b .le. p3b) .and. (h2b .le. h1b)) ...

  which are not mutually exclusive: when ``h1b == h2b`` and/or
  ``p3b == p4b`` two or four of them fire, so a chain performs one,
  two, or four sorted writes (Section IV-A);
- a TCE-style symmetry filter voids odd-parity loop iterations — what
  the PaRSEC inspection phase has to discover at run time.

The general machinery lives in :mod:`repro.tce.terms`; this module
binds it to the specific term the paper evaluates and keeps the
operand tensors easily reachable for verification.
"""

from __future__ import annotations

from repro.sim.cluster import Cluster
from repro.tce.orbital_space import OrbitalSpace
from repro.tce.terms import TermBuilder, TermSpec

__all__ = ["T27Workload", "build_t2_7", "T2_7_SPEC"]

#: icsd_t2_7 is a ring term: contraction over one hole + one particle.
T2_7_SPEC = TermSpec("icsd_t2_7", "hp", level=0)


class T27Workload:
    """Tensors + chain IR for one ``icsd_t2_7`` invocation.

    Attributes
    ----------
    va, tb:
        The integral-like (``hppp``) and amplitude-like (``hphh``)
        operand tensors, filled with seeded data in REAL mode.
    i2:
        The output residual tensor (``pphh``), zero-initialized.
    subroutine:
        The chain IR both runtimes execute.
    """

    def __init__(
        self,
        cluster: Cluster,
        ga,
        space: OrbitalSpace,
        seed: int = 7,
        symmetry_filter: bool = True,
        skew_factor: int = 1,
        skew_period: int = 0,
    ) -> None:
        self.cluster = cluster
        self.ga = ga
        self.space = space
        self.seed = seed
        self.symmetry_filter = symmetry_filter
        self.builder = TermBuilder(
            ga,
            space,
            seed=seed,
            symmetry_filter=symmetry_filter,
            skew_factor=skew_factor,
            skew_period=skew_period,
        )
        self.subroutine = self.builder.build(T2_7_SPEC)
        self.va, self.tb = self.builder.operand_tensors(T2_7_SPEC)
        self.i2 = self.builder.i2
        #: canonical workload-SDK token; the registry overwrites this
        #: with the scale-qualified form (e.g. ``"t2_7:small"``)
        self.workload_id = "t2_7"

    # -- Workload protocol (see repro.workloads.base) -------------------
    @property
    def name(self) -> str:
        return self.subroutine.name

    @property
    def output(self):
        return self.i2

    def levels(self):
        return [self.subroutine]

    def reference_values(self):
        from repro.tce.reference import compute_subroutine_reference

        return compute_subroutine_reference(self.subroutine)

    def describe(self) -> str:
        return self.subroutine.describe()


def build_t2_7(
    cluster: Cluster,
    ga,
    space: OrbitalSpace,
    seed: int = 7,
    symmetry_filter: bool = True,
    skew_factor: int = 1,
    skew_period: int = 0,
) -> T27Workload:
    """Convenience constructor for :class:`T27Workload`."""
    return T27Workload(
        cluster,
        ga,
        space,
        seed=seed,
        symmetry_filter=symmetry_filter,
        skew_factor=skew_factor,
        skew_period=skew_period,
    )
