"""Independent dense-NumPy reference for the contraction semantics.

The paper validates its five algorithmic variants by checking that "the
final result (correlation energy) computed by the different variations
matched up to the 14th digit". We do the same, against a *third*
implementation that shares no code with either runtime: plain NumPy
matmul/transpose over gathered tensors, chain by chain.

Works for any term built by :mod:`repro.tce.terms` (the operand
tensors are resolved through each chain's block references), including
full multi-subroutine CC iterations. Only usable in ``DataMode.REAL``
and meant for the tiny/small systems.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tce.subroutine import ChainSpec, Subroutine
from repro.util.rng import RngStream

__all__ = [
    "chain_output",
    "compute_subroutine_reference",
    "compute_iteration_reference",
    "compute_reference",
    "correlation_energy",
]


def chain_output(chain: ChainSpec, gathered: dict[int, np.ndarray]) -> np.ndarray:
    """The (m, n) chain result C = sum_g A_g^T @ B_g from gathered data.

    ``gathered`` caches whole-tensor copies keyed by ``id(tensor)`` so
    repeated chains do not re-gather.
    """
    C = np.zeros((chain.m, chain.n))
    for gemm in chain.gemms:
        a_flat = _gather(gemm.a.tensor, gathered)
        b_flat = _gather(gemm.b.tensor, gathered)
        a = a_flat[gemm.a.lo : gemm.a.hi].reshape(gemm.k, gemm.m)
        b = b_flat[gemm.b.lo : gemm.b.hi].reshape(gemm.k, gemm.n)
        C += a.T @ b
    return C


def _gather(tensor, gathered: dict[int, np.ndarray]) -> np.ndarray:
    key = id(tensor)
    if key not in gathered:
        if not tensor.array.holds_data:
            raise ValueError("reference computation requires DataMode.REAL")
        gathered[key] = tensor.flat_values()
    return gathered[key]


def compute_subroutine_reference(
    subroutine: Subroutine, out: np.ndarray | None = None
) -> np.ndarray:
    """Expected flat contents of the output array after one subroutine.

    Recomputes every chain densely and applies each active SORT_4
    target: reshape C to the 4-index tile, permute axes, scale by the
    antisymmetry sign, accumulate into the target block range. Pass
    ``out`` to accumulate several subroutines into one array.
    """
    if out is None:
        out = np.zeros(subroutine.output.total)
    gathered: dict[int, np.ndarray] = {}
    for chain in subroutine.chains:
        C = chain_output(chain, gathered)
        tile = C.reshape(chain.tile_shape)
        for sw in chain.active_sorts:
            sorted_block = sw.sign * np.transpose(tile, sw.perm)
            out[sw.target.lo : sw.target.hi] += sorted_block.reshape(-1)
    return out


def compute_iteration_reference(subroutines: Iterable[Subroutine]) -> np.ndarray:
    """Expected i2 contents after a whole iteration's sub-kernels."""
    subroutines = list(subroutines)
    if not subroutines:
        raise ValueError("need at least one subroutine")
    out = np.zeros(subroutines[0].output.total)
    for subroutine in subroutines:
        compute_subroutine_reference(subroutine, out=out)
    return out


def compute_reference(workload) -> np.ndarray:
    """Reference for a single-term workload (e.g. :class:`T27Workload`)."""
    return compute_subroutine_reference(workload.subroutine)


def correlation_energy(i2_flat: np.ndarray, seed: int = 7) -> float:
    """Deterministic scalar probe of the full output tensor.

    A stand-in for NWChem's correlation-energy reduction: a seeded
    random linear functional of i2. Any element-wise discrepancy between
    two runs shows up here, which makes it the right single number for
    the paper's 14-digit agreement check.
    """
    weights = RngStream(seed, "energy-probe").standard_normal(i2_flat.shape[0])
    return float(np.dot(i2_flat, weights) / np.sqrt(i2_flat.shape[0]))
