"""The chain/GEMM/SORT/WRITE intermediate representation.

Both execution models consume the same IR, extracted once from the
(simulated) TCE loop nests:

- the **legacy CGP runtime** executes one :class:`ChainSpec` per stolen
  NXTVAL ticket — blocking GET of each GEMM's operands, the serial GEMM
  chain, then the IF-guarded SORT_4 + ADD_HASH_BLOCK sequence;
- the **PaRSEC port** feeds the same chains through its inspection
  phase into metadata arrays and executes them as a task graph.

Semantics of one chain (what REAL-mode numerics compute)::

    C(m, n) = sum over gemms g:  A_g(k, m)^T @ B_g(k, n)
    for each active sort j:
        target_j += sign_j * permute(C reshaped to the 4-index tile)

which is exactly the dgemm('T','N',...) + SORT_4 + ADD_HASH_BLOCK
structure the paper describes for ``icsd_t2_7()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

from repro.tce.tensor import BlockTensor

__all__ = ["BlockRef", "GemmOp", "SortWrite", "ChainSpec", "Subroutine"]


@dataclass(frozen=True)
class BlockRef:
    """A reference to one stored tile block of a tensor.

    Carries the resolved flat GA range so runtimes never re-derive
    layout arithmetic: ``tensor.array[lo:hi)`` reshaped to ``shape``.
    """

    tensor: BlockTensor
    key: tuple[int, ...]
    lo: int
    hi: int
    shape: tuple[int, ...]

    @property
    def size(self) -> int:
        return self.hi - self.lo

    @property
    def nbytes(self) -> float:
        return 8.0 * self.size

    @classmethod
    def of(cls, tensor: BlockTensor, key: tuple[int, ...]) -> "BlockRef":
        lo, hi = tensor.block_range(key)
        return cls(tensor, key, lo, hi, tensor.block_shape(key))


@dataclass(frozen=True)
class GemmOp:
    """One GEMM of a chain: ``C(m,n) += A(k,m)^T @ B(k,n)``.

    ``position`` is the paper's L2 — the slot in the chain.
    """

    position: int
    a: BlockRef
    b: BlockRef
    m: int
    n: int
    k: int

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k


@dataclass(frozen=True)
class SortWrite:
    """One of the four IF-guarded SORT_4 + ADD_HASH_BLOCK targets.

    ``guard`` is the evaluated IF predicate (e.g. ``p3b <= p4b and
    h1b <= h2b``); inactive targets exist in the IR (the original code
    contains all four branches) but move no data. ``perm`` permutes the
    axes of the chain output reshaped to its 4-index tile; ``sign``
    carries the antisymmetry factor.
    """

    sort_index: int
    guard: bool
    perm: tuple[int, ...]
    sign: float
    target: BlockRef


@dataclass(frozen=True)
class ChainSpec:
    """One GEMM chain — the original code's unit of stolen work.

    ``chain_id`` is the paper's L1. ``key`` is the driving tile tuple
    ``(p3b, p4b, h1b, h2b)``; ``tile_shape`` its per-axis sizes, so the
    chain output C is an ``(m, n) = (sp3*sp4, sh1*sh2)`` matrix.
    """

    chain_id: int
    key: tuple[int, int, int, int]
    tile_shape: tuple[int, int, int, int]
    gemms: tuple[GemmOp, ...]
    sort_writes: tuple[SortWrite, ...]
    level: int = 0

    @property
    def m(self) -> int:
        return self.tile_shape[0] * self.tile_shape[1]

    @property
    def n(self) -> int:
        return self.tile_shape[2] * self.tile_shape[3]

    @property
    def c_size(self) -> int:
        return self.m * self.n

    @property
    def c_nbytes(self) -> float:
        return 8.0 * self.c_size

    @property
    def length(self) -> int:
        """Number of GEMMs (the chain height of Section IV-A)."""
        return len(self.gemms)

    @property
    def active_sorts(self) -> tuple[SortWrite, ...]:
        """The sorts whose IF predicate evaluated true (1, 2, or 4)."""
        return tuple(sw for sw in self.sort_writes if sw.guard)

    @property
    def flops(self) -> float:
        return sum(g.flops for g in self.gemms)


class Subroutine:
    """One TCE-generated subroutine: a named bag of chains.

    The chains are in original program order (the loop-nest order), so
    ``chain_id`` doubles as the priority parameter L1 of Section IV-C.
    """

    def __init__(
        self,
        name: str,
        chains: list[ChainSpec],
        inputs: list[BlockTensor],
        output: BlockTensor,
        level: int = 0,
        structure_token: tuple | None = None,
    ) -> None:
        self.name = name
        self.chains = chains
        self.inputs = inputs
        self.output = output
        self.level = level
        #: hashable fingerprint of everything the chain *structure* depends
        #: on (term spec + orbital space + seed + symmetry filter). Two
        #: subroutines with equal tokens have identical chain IR, so
        #: inspection results keyed on (token, n_nodes, chain height) can
        #: be shared across runs. None disables such sharing.
        self.structure_token = structure_token

    def __iter__(self) -> Iterator[ChainSpec]:
        return iter(self.chains)

    @property
    def n_chains(self) -> int:
        return len(self.chains)

    @property
    def n_gemms(self) -> int:
        return sum(chain.length for chain in self.chains)

    @property
    def total_flops(self) -> float:
        return sum(chain.flops for chain in self.chains)

    @cached_property
    def max_chain_length(self) -> int:
        return max((chain.length for chain in self.chains), default=0)

    def describe(self) -> str:
        """One-line workload summary for logs and reports."""
        return (
            f"{self.name}: {self.n_chains} chains, {self.n_gemms} GEMMs "
            f"(max chain {self.max_chain_length}), "
            f"{self.total_flops / 1e9:.2f} GF"
        )
