"""Generic TCE contraction terms.

``icsd_t2_7`` is one of "more than 60 sub-kernels" the TCE generates
for the iterative CCSD equations (Section III-A). The sub-kernels share
one shape — IF-guarded chains of GEMMs over tile blocks, four guarded
SORT_4/ADD_HASH_BLOCK targets — and differ in *which* index spaces are
contracted: ring terms contract one hole and one particle index,
ladder terms contract two holes or two particles, and one-index terms
contract a single tile index.

:class:`TermSpec` names a term by its contracted index kinds;
:func:`build_term` produces a full :class:`~repro.tce.subroutine.Subroutine`
for it, allocating (or reusing) the operand tensors:

- A operand: ``contraction + 'pp'`` indexed ``(k..., p3, p4)``,
- B operand: ``contraction + 'hh'`` indexed ``(k..., h1, h2)``,
- output: the shared ``i2(p3, p4, h1, h2)`` residual tensor.

so every term lowers to the same ``C(m,n) += A(k,m)^T B(k,n)`` chains
the paper's PTG executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.tce.orbital_space import OrbitalSpace
from repro.tce.subroutine import BlockRef, ChainSpec, GemmOp, SortWrite, Subroutine
from repro.tce.tensor import BlockTensor
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = ["TermSpec", "TermBuilder", "build_term", "SORT_VARIANTS"]

#: axis permutations and antisymmetry signs of the four SORT_4 branches
SORT_VARIANTS: tuple[tuple[tuple[int, int, int, int], float], ...] = (
    ((0, 1, 2, 3), +1.0),
    ((0, 1, 3, 2), -1.0),
    ((1, 0, 2, 3), -1.0),
    ((1, 0, 3, 2), +1.0),
)


@dataclass(frozen=True)
class TermSpec:
    """One TCE sub-kernel: a name, contracted kinds, and a work level."""

    name: str
    #: contracted index kinds, e.g. 'hp' (ring), 'pp'/'hh' (ladders),
    #: 'h' or 'p' (one-index terms)
    contraction: str
    #: which of the seven barrier-separated levels it belongs to
    level: int = 0

    def __post_init__(self) -> None:
        if not (1 <= len(self.contraction) <= 2):
            raise ConfigurationError(
                f"{self.name}: contraction must have 1 or 2 indices, "
                f"got {self.contraction!r}"
            )
        if any(kind not in "hp" for kind in self.contraction):
            raise ConfigurationError(
                f"{self.name}: contraction kinds must be 'h'/'p', "
                f"got {self.contraction!r}"
            )

    @property
    def a_dims(self) -> str:
        return self.contraction + "pp"

    @property
    def b_dims(self) -> str:
        return self.contraction + "hh"


class TermBuilder:
    """Builds term subroutines over a shared tensor pool.

    Operand tensors are keyed by their dimension signature so terms
    with the same contraction reuse storage (as the real integral and
    amplitude arrays are shared between sub-kernels); the ``i2`` output
    is one tensor all terms accumulate into.
    """

    def __init__(
        self,
        ga,
        space: OrbitalSpace,
        seed: int = 7,
        symmetry_filter: bool = True,
        skew_factor: int = 1,
        skew_period: int = 0,
    ) -> None:
        if skew_factor < 1:
            raise ConfigurationError(f"skew_factor must be >= 1, got {skew_factor}")
        if skew_period < 0:
            raise ConfigurationError(f"skew_period must be >= 0, got {skew_period}")
        self.ga = ga
        self.space = space
        self.seed = seed
        self.symmetry_filter = symmetry_filter
        #: imbalance knob: chains whose id is a multiple of
        #: ``skew_period`` repeat their GEMM list ``skew_factor`` times.
        #: With ``skew_period == n_nodes`` every lengthened chain lands
        #: on node 0 under the round-robin placement — the worst case
        #: for static distribution, the showcase for work stealing.
        #: ``skew_period == 0`` (default) disables skew entirely.
        self.skew_factor = skew_factor
        self.skew_period = skew_period
        self._tensors: dict[str, BlockTensor] = {}
        self.i2 = self._tensor("i2", "pphh", fill=False)

    # ------------------------------------------------------------------
    def _tensor(self, name: str, dims: str, fill: bool = True) -> BlockTensor:
        key = f"{name}:{dims}"
        tensor = self._tensors.get(key)
        if tensor is None:
            tensor = BlockTensor.create(self.ga, key, self.space, dims)
            if fill:
                tensor.fill_random(RngStream(self.seed, key))
            self._tensors[key] = tensor
        return tensor

    def operand_tensors(self, spec: TermSpec) -> tuple[BlockTensor, BlockTensor]:
        """The (A, B) tensors a term contracts (allocated on demand)."""
        a = self._tensor("v", spec.a_dims)
        b = self._tensor("t", spec.b_dims)
        return a, b

    # ------------------------------------------------------------------
    def _keep_iteration(self, contr_key: tuple, out_key: tuple) -> bool:
        """The spin/spatial-symmetry IF around each innermost body."""
        if not self.symmetry_filter:
            return True
        return (sum(contr_key) + sum(out_key)) % 2 == 0

    def build(self, spec: TermSpec) -> Subroutine:
        """Generate the full chain IR for one term."""
        space = self.space
        a_tensor, b_tensor = self.operand_tensors(spec)
        contr_ranges = [range(len(space.tiles(kind))) for kind in spec.contraction]
        chains: list[ChainSpec] = []
        chain_id = 0
        n_p = space.n_particle_tiles
        n_h = space.n_hole_tiles
        for p3b in range(n_p):
            for p4b in range(p3b, n_p):
                for h1b in range(n_h):
                    for h2b in range(h1b, n_h):
                        key = (p3b, p4b, h1b, h2b)
                        m = space.particles[p3b].size * space.particles[p4b].size
                        n = space.holes[h1b].size * space.holes[h2b].size
                        gemms: list[GemmOp] = []
                        position = 0
                        for contr_key in product(*contr_ranges):
                            if not self._keep_iteration(contr_key, key):
                                continue
                            k = 1
                            for kind, index in zip(spec.contraction, contr_key):
                                k *= space.tiles(kind)[index].size
                            gemms.append(
                                GemmOp(
                                    position=position,
                                    a=BlockRef.of(a_tensor, contr_key + (p3b, p4b)),
                                    b=BlockRef.of(b_tensor, contr_key + (h1b, h2b)),
                                    m=m,
                                    n=n,
                                    k=k,
                                )
                            )
                            position += 1
                        if not gemms:
                            continue
                        gemms = self._apply_skew(chain_id, gemms)
                        chains.append(
                            ChainSpec(
                                chain_id=chain_id,
                                key=key,
                                tile_shape=(
                                    space.particles[p3b].size,
                                    space.particles[p4b].size,
                                    space.holes[h1b].size,
                                    space.holes[h2b].size,
                                ),
                                gemms=tuple(gemms),
                                sort_writes=self._sort_writes(key),
                                level=spec.level,
                            )
                        )
                        chain_id += 1
        return Subroutine(
            name=spec.name,
            chains=chains,
            inputs=[a_tensor, b_tensor],
            output=self.i2,
            level=spec.level,
            structure_token=(
                spec.name,
                spec.contraction,
                spec.level,
                space.nocc,
                space.nvirt,
                space.tile_size,
                self.seed,
                self.symmetry_filter,
                self.skew_factor,
                self.skew_period,
            ),
        )

    def _apply_skew(self, chain_id: int, gemms: list[GemmOp]) -> list[GemmOp]:
        """Lengthen the chain when the imbalance knob selects it.

        The GEMM list is repeated ``skew_factor`` times with positions
        renumbered, so a skewed chain does proportionally more flops
        through the exact same dataflow shape (each repeat gets its own
        READ tasks and contributes to the same accumulation).
        """
        if (
            self.skew_factor <= 1
            or self.skew_period <= 0
            or chain_id % self.skew_period != 0
        ):
            return gemms
        stretched: list[GemmOp] = []
        for repeat in range(self.skew_factor):
            for gemm in gemms:
                stretched.append(
                    GemmOp(
                        position=len(stretched),
                        a=gemm.a,
                        b=gemm.b,
                        m=gemm.m,
                        n=gemm.n,
                        k=gemm.k,
                    )
                )
        return stretched

    def _sort_writes(self, key: tuple[int, int, int, int]) -> tuple[SortWrite, ...]:
        p3b, p4b, h1b, h2b = key
        guards = (
            p3b <= p4b and h1b <= h2b,
            p3b <= p4b and h2b <= h1b,
            p4b <= p3b and h1b <= h2b,
            p4b <= p3b and h2b <= h1b,
        )
        target_keys = (
            (p3b, p4b, h1b, h2b),
            (p3b, p4b, h2b, h1b),
            (p4b, p3b, h1b, h2b),
            (p4b, p3b, h2b, h1b),
        )
        return tuple(
            SortWrite(
                sort_index=index,
                guard=guard,
                perm=perm,
                sign=sign,
                target=BlockRef.of(self.i2, target_key),
            )
            for index, ((perm, sign), guard, target_key) in enumerate(
                zip(SORT_VARIANTS, guards, target_keys)
            )
        )


def build_term(
    ga,
    space: OrbitalSpace,
    spec: TermSpec,
    seed: int = 7,
    symmetry_filter: bool = True,
) -> Subroutine:
    """One-shot convenience: a fresh builder, one term."""
    builder = TermBuilder(ga, space, seed=seed, symmetry_filter=symmetry_filter)
    return builder.build(spec)
