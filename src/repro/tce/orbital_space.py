"""Tiled orbital spaces.

TCE partitions the occupied ("hole") and virtual ("particle") orbital
ranges into tiles; every tensor index in the generated code is a tile
index (``h1b``, ``p3b``, …) and every kernel operates on whole tiles.
Tile sizes determine the GEMM shapes and the chain counts — the two
workload parameters the paper's performance behaviour hinges on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError

__all__ = ["Tile", "OrbitalSpace"]


@dataclass(frozen=True)
class Tile:
    """One tile of an orbital range.

    ``kind`` is ``'h'`` (hole/occupied) or ``'p'`` (particle/virtual);
    ``index`` counts tiles within the kind; ``offset`` is the first
    orbital of the tile within its kind's range.
    """

    kind: str
    index: int
    size: int
    offset: int

    def __post_init__(self) -> None:
        if self.kind not in ("h", "p"):
            raise ConfigurationError(f"tile kind must be 'h' or 'p', got {self.kind!r}")
        if self.size < 1:
            raise ConfigurationError(f"tile size must be >= 1, got {self.size}")


def _tile_range(kind: str, total: int, tile_size: int) -> tuple[Tile, ...]:
    tiles = []
    offset = 0
    index = 0
    while offset < total:
        size = min(tile_size, total - offset)
        tiles.append(Tile(kind, index, size, offset))
        offset += size
        index += 1
    return tuple(tiles)


class OrbitalSpace:
    """Occupied + virtual orbital ranges cut into tiles.

    Parameters
    ----------
    nocc, nvirt:
        Number of occupied / virtual spin orbitals (``nocc + nvirt`` is
        the basis-set size the paper quotes: 472 for beta-carotene in
        6-31G).
    tile_size:
        Maximum orbitals per tile; the trailing tile of each range may
        be smaller.
    """

    def __init__(self, nocc: int, nvirt: int, tile_size: int) -> None:
        if nocc < 1 or nvirt < 1:
            raise ConfigurationError(
                f"need nocc >= 1 and nvirt >= 1, got {nocc}/{nvirt}"
            )
        if tile_size < 1:
            raise ConfigurationError(f"tile_size must be >= 1, got {tile_size}")
        self.nocc = nocc
        self.nvirt = nvirt
        self.tile_size = tile_size
        self.holes: tuple[Tile, ...] = _tile_range("h", nocc, tile_size)
        self.particles: tuple[Tile, ...] = _tile_range("p", nvirt, tile_size)

    @property
    def n_basis(self) -> int:
        """Total basis-set size (what the paper calls N)."""
        return self.nocc + self.nvirt

    @property
    def n_hole_tiles(self) -> int:
        return len(self.holes)

    @property
    def n_particle_tiles(self) -> int:
        return len(self.particles)

    def tiles(self, kind: str) -> tuple[Tile, ...]:
        """Tile list for one kind ('h' or 'p')."""
        if kind == "h":
            return self.holes
        if kind == "p":
            return self.particles
        raise ConfigurationError(f"unknown tile kind {kind!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OrbitalSpace(nocc={self.nocc}, nvirt={self.nvirt}, "
            f"tile={self.tile_size}: {self.n_hole_tiles}h x {self.n_particle_tiles}p)"
        )
