"""One full CCSD iteration: seven barrier-separated work levels.

Section III-A: the TCE generates "multiple (more than 60) sub-kernels"
whose work "is divided into seven different levels and there is an
explicit synchronization step between those levels. This implies that
the task-stealing model applies only within each level."

:func:`build_ccsd_iteration` assembles a representative iteration —
fourteen contraction terms of ring / ladder / one-index type spread
over seven levels, all accumulating into the shared i2 residual —
suitable for the legacy runtime (levels map directly onto its barrier
structure) and for the mixed legacy/PaRSEC integration driver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tce.orbital_space import OrbitalSpace
from repro.tce.subroutine import Subroutine
from repro.tce.terms import TermBuilder, TermSpec

__all__ = ["DEFAULT_ITERATION_TERMS", "CcsdIteration", "build_ccsd_iteration"]

#: A representative sub-kernel table: ring terms ('hp'), hole and
#: particle ladders ('hh'/'pp'), and cheap one-index terms, two per
#: level across the seven levels. icsd_t2_7 sits at its real spot as a
#: ring term.
DEFAULT_ITERATION_TERMS: tuple[TermSpec, ...] = (
    TermSpec("icsd_t2_1", "h", level=0),
    TermSpec("icsd_t2_2", "hh", level=0),
    TermSpec("icsd_t2_3", "hp", level=1),
    TermSpec("icsd_t2_4", "p", level=1),
    TermSpec("icsd_t2_5", "hh", level=2),
    TermSpec("icsd_t2_6", "hp", level=2),
    TermSpec("icsd_t2_7", "hp", level=3),
    TermSpec("icsd_t2_8", "pp", level=3),
    TermSpec("icsd_t2_9", "p", level=4),
    TermSpec("icsd_t2_10", "hp", level=4),
    TermSpec("icsd_t2_11", "hh", level=5),
    TermSpec("icsd_t2_12", "h", level=5),
    TermSpec("icsd_t2_13", "pp", level=6),
    TermSpec("icsd_t2_14", "hp", level=6),
)


@dataclass
class CcsdIteration:
    """One assembled iteration: subroutines grouped by level."""

    builder: TermBuilder
    subroutines: list[Subroutine]

    @property
    def i2(self):
        """The shared residual tensor all terms accumulate into."""
        return self.builder.i2

    @property
    def n_levels(self) -> int:
        return 1 + max(s.level for s in self.subroutines)

    def levels(self) -> list[list[Subroutine]]:
        """Subroutines grouped by barrier level, in level order."""
        out: list[list[Subroutine]] = [[] for _ in range(self.n_levels)]
        for subroutine in self.subroutines:
            out[subroutine.level].append(subroutine)
        return out

    def chain_levels(self) -> list[list]:
        """Chains grouped per level — the legacy runtime's work units.

        Within a level the chains of all its subroutines form one
        stealable pool (chain ids re-numbered densely per level, as the
        shared NXTVAL ticket sequence requires).
        """
        import dataclasses

        out = []
        for level in self.levels():
            pool = []
            for subroutine in level:
                pool.extend(subroutine.chains)
            out.append(
                [
                    dataclasses.replace(chain, chain_id=i)
                    for i, chain in enumerate(pool)
                ]
            )
        return out

    def subroutine(self, name: str) -> Subroutine:
        for sub in self.subroutines:
            if sub.name == name:
                return sub
        raise KeyError(f"no subroutine named {name!r} in this iteration")

    @property
    def total_gemms(self) -> int:
        return sum(s.n_gemms for s in self.subroutines)

    def describe(self) -> str:
        return (
            f"CCSD iteration: {len(self.subroutines)} sub-kernels over "
            f"{self.n_levels} levels, {self.total_gemms} GEMMs total"
        )


def build_ccsd_iteration(
    ga,
    space: OrbitalSpace,
    seed: int = 7,
    symmetry_filter: bool = True,
    terms: tuple[TermSpec, ...] = DEFAULT_ITERATION_TERMS,
) -> CcsdIteration:
    """Assemble one iteration's sub-kernels over a shared tensor pool."""
    builder = TermBuilder(ga, space, seed=seed, symmetry_filter=symmetry_filter)
    subroutines = [builder.build(spec) for spec in terms]
    return CcsdIteration(builder=builder, subroutines=subroutines)
