"""Model chemical systems.

The paper evaluates on beta-carotene (C40H56) in the 6-31G basis set —
"472 basis set functions". C40H56 has 296 electrons, i.e. 148 occupied
spatial orbitals, leaving 324 virtuals. We carry those orbital counts
(what determines tile structure, chain counts, and GEMM shapes) and a
typical TCE tile size; the actual integral *values* are seeded synthetic
data, since the performance and dataflow behaviour under study does not
depend on them (the paper itself checks only that all variants agree on
the correlation energy, which we verify the same way).

Scaled-down systems keep the same tile arithmetic at sizes where REAL
data mode is cheap, for tests and the equivalence benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tce.orbital_space import OrbitalSpace

__all__ = [
    "MoleculeSystem",
    "beta_carotene",
    "tiny_system",
    "small_system",
    "SCALE_PRESETS",
    "system_for_scale",
]


@dataclass(frozen=True)
class MoleculeSystem:
    """A named orbital-space configuration."""

    name: str
    nocc: int
    nvirt: int
    tile_size: int
    description: str = ""

    @property
    def n_basis(self) -> int:
        return self.nocc + self.nvirt

    def orbital_space(self) -> OrbitalSpace:
        """Build the tiled orbital space for this system."""
        return OrbitalSpace(self.nocc, self.nvirt, self.tile_size)


def beta_carotene(tile_size: int = 40) -> MoleculeSystem:
    """Beta-carotene / 6-31G: the paper's input molecule (472 bf)."""
    return MoleculeSystem(
        name="beta-carotene",
        nocc=148,
        nvirt=324,
        tile_size=tile_size,
        description="C40H56 in 6-31G: 472 basis functions, 296 electrons",
    )


def tiny_system() -> MoleculeSystem:
    """Minimal system for unit tests with REAL data (a few hundred GEMMs)."""
    return MoleculeSystem(
        name="tiny",
        nocc=8,
        nvirt=16,
        tile_size=4,
        description="synthetic test system: 2 hole tiles x 4 particle tiles",
    )


def small_system() -> MoleculeSystem:
    """Integration-test system with REAL data (a few thousand GEMMs)."""
    return MoleculeSystem(
        name="small",
        nocc=24,
        nvirt=48,
        tile_size=8,
        description="synthetic test system: 3 hole tiles x 6 particle tiles",
    )


#: Named presets accepted by the benchmarks' REPRO_SCALE environment knob.
SCALE_PRESETS: dict[str, MoleculeSystem] = {
    "tiny": tiny_system(),
    "small": small_system(),
    "paper": beta_carotene(tile_size=40),
    "full": beta_carotene(tile_size=32),
}


def system_for_scale(scale: str) -> MoleculeSystem:
    """Look up a scale preset (see DESIGN.md section 7).

    Raises :class:`~repro.util.errors.ConfigurationError` — the same
    usage-error type the run facade raises for unknown workload and
    runtime names, so the CLI maps all of them to exit code 2.
    """
    from repro.util.errors import ConfigurationError

    try:
        return SCALE_PRESETS[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {scale!r}; choose from {sorted(SCALE_PRESETS)}"
        ) from None
