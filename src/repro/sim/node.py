"""One simulated compute node.

A :class:`Node` bundles the per-node contended hardware: the shared
memory-bandwidth resource, the NIC, named mailboxes for the service
processes that live on the node (Global Arrays handler, PaRSEC
communication thread), and named mutexes (the WRITE_C critical-region
mutex of Section IV-A lives here).

The :meth:`execute` helper is the single place where task work is
charged and traced: the CPU part runs exclusively on the calling thread
(a plain timeout) and the memory part is pushed through the shared
bandwidth resource, so co-scheduled memory-bound tasks slow each other
down exactly as on the real machine.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.sim.engine import Engine
from repro.sim.mutex import SimMutex
from repro.sim.network import NIC
from repro.sim.queues import Store
from repro.sim.resources import BandwidthResource
from repro.sim.trace import TaskCategory, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.cost import MachineModel, OpCost

__all__ = ["Node"]


class Node:
    """Compute node: cores, shared memory bandwidth, NIC, mailboxes."""

    def __init__(
        self,
        engine: Engine,
        node_id: int,
        machine: "MachineModel",
        cores: int,
        trace: TraceRecorder,
    ) -> None:
        if cores < 1:
            raise ValueError(f"node needs >= 1 core, got {cores}")
        self.engine = engine
        self.node_id = node_id
        self.machine = machine
        self.cores = cores
        self.trace = trace
        self.membw = BandwidthResource(
            engine,
            machine.mem_bw_bytes_per_s,
            name=f"membw{node_id}",
            per_job_cap=machine.core_copy_bytes_per_s,
        )
        self.nic = NIC(engine, node_id)
        self._inboxes: dict[str, Store] = {}
        self._mutexes: dict[str, SimMutex] = {}
        self._pcie: BandwidthResource | None = None
        #: False once the node's compute has fail-stopped (see
        #: repro.sim.faults). Memory, NIC, and service processes survive.
        self.alive = True
        #: straggler episodes: (t_start, t_end, factor) CPU multipliers
        self.slow_windows: list[tuple[float, float, float]] = []
        #: DTD runtime instances with a live receiver process parked on
        #: this node (see repro.parsec.dtd) — declared here so the
        #: attribute has a home and a type
        self._dtd_receivers: set[int] = set()

    @property
    def pcie(self) -> BandwidthResource:
        """Host<->device staging link, created on first use."""
        if self._pcie is None:
            self._pcie = BandwidthResource(
                self.engine,
                self.machine.pcie_bytes_per_s,
                name=f"pcie{self.node_id}",
            )
        return self._pcie

    # ------------------------------------------------------------------
    def inbox(self, name: str) -> Store:
        """The named mailbox, created on first use."""
        store = self._inboxes.get(name)
        if store is None:
            store = Store(self.engine, name=f"node{self.node_id}:{name}")
            self._inboxes[name] = store
        return store

    def mutex(self, name: str) -> SimMutex:
        """The named mutex, created on first use with machine overheads."""
        mutex = self._mutexes.get(name)
        if mutex is None:
            mutex = SimMutex(
                self.engine,
                lock_overhead=self.machine.mutex_lock_s,
                unlock_overhead=self.machine.mutex_unlock_s,
                name=f"node{self.node_id}:{name}",
            )
            self._mutexes[name] = mutex
        return mutex

    # ------------------------------------------------------------------
    def cpu_scale(self) -> float:
        """Current CPU-cost multiplier (straggler windows, default 1)."""
        if not self.slow_windows:
            return 1.0
        now = self.engine.now
        factor = 1.0
        for t_start, t_end, window_factor in self.slow_windows:
            if t_start <= now < t_end:
                factor *= window_factor
        return factor

    def execute(
        self,
        thread: int,
        category: TaskCategory,
        label: str,
        cost: "OpCost",
        meta: Optional[dict] = None,
        timer=None,
    ):
        """Generator helper: run one operation on this node and trace it.

        Charges ``cost.cpu`` as exclusive core time (scaled by any
        active straggler window) then ``cost.bytes`` through the shared
        memory bandwidth, and records the enclosing span. Use as
        ``yield from node.execute(...)``. ``timer`` (a caller-owned
        :class:`~repro.sim.timeline.TimelineTimer`) replaces the
        ``Timeout`` allocation for the CPU charge when given.
        """
        t_start = self.engine.now
        if cost.cpu > 0:
            scaled = cost.cpu * self.cpu_scale()
            if timer is not None:
                yield timer.after(scaled)
            else:
                yield self.engine.timeout(scaled)
        if cost.bytes > 0:
            yield self.membw.transfer(cost.bytes)
        self.trace.record(
            self.node_id, thread, category, label, t_start, self.engine.now, meta
        )

    def occupy(self, duration: float, timer=None):
        """Generator helper: plain untraced core time (overheads)."""
        if duration > 0:
            scaled = duration * self.cpu_scale()
            if timer is not None:
                yield timer.after(scaled)
            else:
                yield self.engine.timeout(scaled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id}, cores={self.cores})"
