"""The discrete-event simulation kernel.

A :class:`Engine` owns a virtual clock and an event heap. Simulated
threads are ordinary Python generators wrapped in :class:`Process`; they
advance by ``yield``-ing *waitables* — :class:`SimEvent`,
:class:`Timeout`, another :class:`Process`, or any object exposing
``_wait(callback)``. The kernel resumes them when the waitable fires.

Design notes
------------
- Ties in the heap are broken by a monotone sequence number, so event
  ordering — and therefore every simulated timing — is fully
  deterministic.
- Callbacks run *through the heap* (scheduled at zero delay), never
  synchronously from ``succeed()``. This keeps trigger cascades iterative
  (no recursion-depth coupling to chain length) and gives a single,
  predictable interleaving rule.
- A process that raises with nobody waiting on its completion re-raises
  out of :meth:`Engine.run` — silent death of a simulated thread would
  otherwise manifest as an inexplicable hang.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.util.errors import SimulationError

__all__ = [
    "Engine",
    "SimEvent",
    "Timeout",
    "Process",
    "ScheduledCall",
    "all_of",
    "any_of",
]

_PENDING = 0
_SUCCEEDED = 1
_FAILED = 2


class ScheduledCall:
    """Handle for a callback sitting in the event heap.

    Supports :meth:`cancel`, which lazily removes the entry (the heap
    slot stays until popped, but the callback will not run).
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable, args: tuple) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running when its slot is popped."""
        self.cancelled = True


class Engine:
    """Virtual clock plus event heap; the root object of every simulation."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, ScheduledCall]] = []
        self._seq = itertools.count()
        self._running = False

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` to run ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule at negative delay {delay}")
        call = ScheduledCall(self.now + delay, fn, args)
        heapq.heappush(self._heap, (call.time, next(self._seq), call))
        return call

    def event(self) -> "SimEvent":
        """A fresh, untriggered event owned by this engine."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> "Timeout":
        """An event that fires ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator, name: Optional[str] = None
    ) -> "Process":
        """Wrap ``generator`` as a simulated thread and start it at t=now."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap; return the final virtual time.

        If ``until`` is given, stop as soon as the next event lies beyond
        it and set the clock to exactly ``until``.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        try:
            while self._heap:
                time, _, call = self._heap[0]
                if call.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and time > until:
                    self.now = until
                    return self.now
                heapq.heappop(self._heap)
                self.now = time
                call.fn(*call.args)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
        return self.now

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None


class SimEvent:
    """A one-shot event processes can wait on.

    Lifecycle: pending → succeeded (with a value) or failed (with an
    exception). Waiters registered after the fact are resumed
    immediately (through the heap), so late subscription is safe.
    """

    __slots__ = ("_engine", "_status", "_value", "_callbacks")

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._status = _PENDING
        self._value: Any = None
        self._callbacks: list[Callable[["SimEvent"], None]] = []

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._status != _PENDING

    @property
    def ok(self) -> bool:
        """True iff the event succeeded."""
        return self._status == _SUCCEEDED

    @property
    def failed(self) -> bool:
        """True iff the event failed."""
        return self._status == _FAILED

    @property
    def value(self) -> Any:
        """The success value (or the exception if failed)."""
        return self._value

    # -- transitions -----------------------------------------------------
    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event successfully, resuming all waiters."""
        if self._status != _PENDING:
            raise SimulationError("event already triggered")
        self._status = _SUCCEEDED
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Fire the event as a failure; waiters see the exception thrown."""
        if self._status != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._status = _FAILED
        self._value = exception
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self._engine.schedule(0.0, cb, self)

    # -- waiting ----------------------------------------------------------
    def _wait(self, callback: Callable[["SimEvent"], None]) -> None:
        """Register ``callback(event)``; runs (via the heap) once triggered."""
        if self._status != _PENDING:
            self._engine.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    @property
    def has_waiters(self) -> bool:
        """True if at least one callback is registered and pending."""
        return bool(self._callbacks)


class Timeout(SimEvent):
    """An event that succeeds a fixed virtual delay after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: Engine, delay: float, value: Any = None) -> None:
        super().__init__(engine)
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        engine.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class Process:
    """A simulated thread: a generator driven by the engine.

    The generator may ``yield`` any waitable; the value sent back is the
    waitable's success value. ``return value`` inside the generator sets
    the success value of :attr:`completion`, which is itself waitable —
    so processes can fork and join each other.
    """

    __slots__ = ("engine", "name", "_generator", "completion", "_started")

    def __init__(
        self, engine: Engine, generator: Generator, name: Optional[str] = None
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__} "
                "(did you call the function with ()?)"
            )
        self.engine = engine
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.completion = SimEvent(engine)
        engine.schedule(0.0, self._step, None)

    @property
    def alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.completion.triggered

    def _wait(self, callback: Callable[[SimEvent], None]) -> None:
        """Waiting on a process means waiting on its completion event."""
        self.completion._wait(callback)

    def _step(self, fired: Optional[SimEvent]) -> None:
        try:
            if fired is None:
                target = self._generator.send(None)
            elif fired.failed:
                target = self._generator.throw(fired.value)
            else:
                target = self._generator.send(fired.value)
        except StopIteration as stop:
            self.completion.succeed(stop.value)
            return
        except BaseException as exc:
            if self.completion.has_waiters:
                self.completion.fail(exc)
                return
            raise SimulationError(
                f"unhandled exception in simulated process {self.name!r}"
            ) from exc
        if not hasattr(target, "_wait"):
            raise SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )
        target._wait(self._step)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"


def all_of(engine: Engine, events: Iterable) -> SimEvent:
    """An event that succeeds when every input waitable has succeeded.

    The success value is the list of individual values in input order.
    If any input fails, the combined event fails with that exception
    (first failure wins).
    """
    events = list(events)
    combined = SimEvent(engine)
    if not events:
        combined.succeed([])
        return combined
    remaining = [len(events)]
    values: list[Any] = [None] * len(events)

    def make_cb(index: int):
        def on_fire(ev: SimEvent) -> None:
            if combined.triggered:
                return
            if ev.failed:
                combined.fail(ev.value)
                return
            values[index] = ev.value
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.succeed(list(values))

        return on_fire

    for i, ev in enumerate(events):
        ev._wait(make_cb(i))
    return combined


def any_of(engine: Engine, events: Iterable) -> SimEvent:
    """An event that succeeds when the first input waitable *succeeds*.

    The success value is ``(index, value)`` of the winner. Failures are
    not fatal while any input might still succeed: the combined event
    fails only once **every** input has failed, and then with the first
    failure's exception. (An earlier version failed as soon as the first
    triggered waitable failed, which let a fast failure mask a slower
    success — exactly the race recovery code hits when one of several
    redundant attempts dies first.)
    """
    events = list(events)
    if not events:
        raise SimulationError("any_of() needs at least one event")
    combined = SimEvent(engine)
    failed = [0]
    first_failure: list[Optional[BaseException]] = [None]

    def make_cb(index: int):
        def on_fire(ev: SimEvent) -> None:
            if combined.triggered:
                return
            if ev.failed:
                if first_failure[0] is None:
                    first_failure[0] = ev.value
                failed[0] += 1
                if failed[0] == len(events):
                    combined.fail(first_failure[0])
            else:
                combined.succeed((index, ev.value))

        return on_fire

    for i, ev in enumerate(events):
        ev._wait(make_cb(i))
    return combined
