"""The discrete-event simulation kernel.

A :class:`Engine` owns a virtual clock and an event heap. Simulated
threads are ordinary Python generators wrapped in :class:`Process`; they
advance by ``yield``-ing *waitables* — :class:`SimEvent`,
:class:`Timeout`, another :class:`Process`, or any object exposing
``_wait(callback)``. The kernel resumes them when the waitable fires.

Design notes
------------
- Ties in the heap are broken by a monotone sequence number, so event
  ordering — and therefore every simulated timing — is fully
  deterministic.
- Callbacks run *deferred* (at zero virtual delay), never synchronously
  from ``succeed()``. This keeps trigger cascades iterative (no
  recursion-depth coupling to chain length) and gives a single,
  predictable interleaving rule.
- Zero-delay callbacks travel through the *immediate lane*, a plain
  FIFO merged with the heap by ``(time, seq)``. Because a lane entry is
  stamped with the clock at registration and the clock never runs ahead
  of a pending heap entry, lane entries always sort at-or-before the
  heap head; the sequence number — drawn from the same counter as heap
  entries — breaks the tie. The drain order is therefore *identical* to
  pushing the same callbacks through ``heapq`` at zero delay, while
  costing one ``deque`` operation instead of two O(log n) heap
  operations. Golden-digest tests pin this equivalence.
- Shape-homogeneous event classes (worker task timeouts, comm-thread
  service timeouts, bandwidth wakeups) ride the
  :class:`~repro.sim.timeline.BatchedTimeline`, a third drain source
  merged by the same ``(time, seq)`` rule. Its rows are bare tuples
  over struct-of-arrays channel state — no per-event allocation at
  all — and its sequence numbers come from the same shared counter,
  so the merged order is again identical to the all-heap order.
- A process that raises with nobody waiting on its completion re-raises
  out of :meth:`Engine.run` — silent death of a simulated thread would
  otherwise manifest as an inexplicable hang.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.timeline import BatchedTimeline
from repro.util.errors import SimulationError

__all__ = [
    "Engine",
    "SimEvent",
    "Timeout",
    "Process",
    "ScheduledCall",
    "Checkpoint",
    "all_of",
    "any_of",
]

_PENDING = 0
_SUCCEEDED = 1
_FAILED = 2


class ScheduledCall:
    """Handle for a callback sitting in the event heap.

    Supports :meth:`cancel`, which lazily removes the entry: the heap
    slot stays until popped (or until the engine compacts the heap —
    see :meth:`Engine._compact`), but the callback will not run.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "popped", "_engine")

    def __init__(
        self, engine: "Engine", time: float, fn: Callable, args: tuple
    ) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: True once the entry has left the heap (fired, skipped, or
        #: compacted away) — lets cancel() keep an honest count of the
        #: cancelled entries still occupying heap slots.
        self.popped = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running when its slot is popped."""
        if not self.cancelled:
            self.cancelled = True
            if not self.popped:
                self._engine._note_cancel()


class Checkpoint:
    """A reusable waitable that resumes its waiter through the immediate
    lane, delivering ``None``.

    ``yield engine.checkpoint`` consumes exactly one sequence number and
    re-runs the process at the same position in the event order as
    yielding an already-succeeded :class:`SimEvent` would — but with no
    per-yield allocation. It is the fast path for "the queue had an
    item; defer one lane step and continue" loops in the schedulers and
    communication threads.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine

    def _wait(self, callback: Callable) -> None:
        # inlined call_soon — this is one lane append per queue fast-path
        # hop, the single most frequent wait in a converted simulation
        engine = self._engine
        engine._immediate.append((engine.now, next(engine._seq), callback, None))


#: Compaction only kicks in past this heap size: tiny heaps are cheap
#: to scan lazily, and the threshold avoids O(n) rebuild churn when a
#: short-lived simulation cancels its only few timers.
_COMPACT_MIN = 64


class Engine:
    """Virtual clock plus event heap; the root object of every simulation."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, ScheduledCall]] = []
        #: zero-delay callbacks: (time, seq, fn, arg), FIFO == seq order
        self._immediate: deque[tuple[float, int, Callable, Any]] = deque()
        self._seq = itertools.count()
        self._running = False
        self._cancelled_pending = 0
        self.checkpoint = Checkpoint(self)
        #: struct-of-arrays store for homogeneous event classes, merged
        #: with the heap and lane by (time, seq) — see timeline.py
        self.timeline = BatchedTimeline(self)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def heap_size(self) -> int:
        """Heap slots currently occupied (live + lazily-cancelled)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled :class:`ScheduledCall` entries still in the heap."""
        return self._cancelled_pending

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` to run ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule at negative delay {delay}")
        call = ScheduledCall(self, self.now + delay, fn, args)
        heapq.heappush(self._heap, (call.time, next(self._seq), call))
        return call

    def call_soon(self, fn: Callable, arg: Any = None) -> None:
        """Run ``fn(arg)`` at the current virtual time, deferred.

        The fast lane for zero-delay dispatch: same ``(time, seq)``
        ordering as ``schedule(0.0, fn, arg)``, but a single FIFO append
        instead of a heap push/pop pair, and no cancellation handle.
        """
        self._immediate.append((self.now, next(self._seq), fn, arg))

    # ------------------------------------------------------------------
    # lazy-cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= _COMPACT_MIN
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant.

        Rebuilds *in place* (slice assignment) so that :meth:`run`'s
        local alias of the heap list stays valid, and re-heapifies on
        the same ``(time, seq)`` keys — the drain order of the
        surviving entries is untouched, so virtual timings are bitwise
        identical with or without compaction.
        """
        live = []
        for entry in self._heap:
            if entry[2].cancelled:
                entry[2].popped = True
            else:
                live.append(entry)
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    def event(self) -> "SimEvent":
        """A fresh, untriggered event owned by this engine."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> "Timeout":
        """An event that fires ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator, name: Optional[str] = None
    ) -> "Process":
        """Wrap ``generator`` as a simulated thread and start it at t=now."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queues; return the final virtual time.

        If ``until`` is given, stop as soon as the next event lies beyond
        it and set the clock to exactly ``until``.

        Invariant: a callback may push, cancel, or — via cancellation —
        compact the heap, so any peeked head entry is stale the moment a
        callback has run. The loop therefore re-reads the heap, lane,
        and timeline heads on every iteration and never carries an entry
        reference across a callback. (:meth:`peek` pops cancelled heads
        for the same reason: callers must treat it as mutating.)
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        heap = self._heap  # _compact() rebuilds in place, alias stays valid
        lane = self._immediate
        popleft = lane.popleft
        timeline = self.timeline
        tl_heap = timeline._heap  # _compact() rebuilds in place too
        tl_armed = timeline._chan_armed  # append-only column, alias stays valid
        tl_cb = timeline._chan_cb
        tl_modes = timeline._kind_modes
        seq = self._seq
        pop = heapq.heappop
        try:
            while True:
                # shed lazily-cancelled heap heads before choosing a lane
                while heap and heap[0][2].cancelled:
                    dead = pop(heap)[2]
                    dead.popped = True
                    self._cancelled_pending -= 1
                # shed stale timeline heads (disarmed / re-armed channels)
                while tl_heap and tl_heap[0][1] != tl_armed[tl_heap[0][4]]:
                    pop(tl_heap)
                    timeline._stale_pending -= 1
                    timeline.stale_dropped += 1
                # challenger: the earlier of the two heap heads. Tuple
                # comparison never reaches the third element because the
                # shared counter makes (time, seq) pairs unique.
                if heap:
                    best = heap[0]
                    if tl_heap and tl_heap[0] < best:
                        best = tl_heap[0]
                elif tl_heap:
                    best = tl_heap[0]
                else:
                    best = None
                if lane:
                    head = lane[0]
                    # lane entries are stamped at-or-before the clock and
                    # the clock never passes a pending heap/timeline entry,
                    # so the lane head can only tie on time — the shared
                    # sequence counter then decides, exactly as a heap
                    # push at zero delay would have.
                    #
                    # Burst drain: every entry *currently* in the lane that
                    # beats ``best`` can fire without re-consulting the
                    # heaps. Any entry a callback pushes mid-burst carries a
                    # fresh (larger) sequence number and a time >= now, so
                    # it can never sort before a lane entry that was already
                    # enqueued — comparing against the pre-burst ``best`` is
                    # exact, not merely conservative. (A mid-burst
                    # cancellation of ``best`` only ends the burst early;
                    # the outer loop re-sheds and re-selects.)
                    if best is None:
                        if until is not None and head[0] > until:
                            self.now = until
                            return until
                        for _ in range(len(lane)):
                            head = popleft()
                            self.now = head[0]
                            head[2](head[3])
                        continue
                    best_time = best[0]
                    best_seq = best[1]
                    time = head[0]
                    if time < best_time or (
                        time == best_time and head[1] < best_seq
                    ):
                        if until is not None and time > until:
                            self.now = until
                            return until
                        for _ in range(len(lane)):
                            head = lane[0]
                            time = head[0]
                            if time > best_time or (
                                time == best_time and head[1] > best_seq
                            ):
                                break
                            popleft()
                            self.now = time
                            head[2](head[3])
                        continue
                if best is None:
                    break
                time = best[0]
                if until is not None and time > until:
                    self.now = until
                    return until
                if heap and best is heap[0]:
                    pop(heap)
                    call = best[2]
                    call.popped = True
                    self.now = time
                    call.fn(*call.args)
                else:
                    # inlined BatchedTimeline._fire (hot: one call frame
                    # per fired row adds up at this volume)
                    pop(tl_heap)
                    self.now = time
                    slot = best[4]
                    tl_armed[slot] = -1
                    timeline.fired_total += 1
                    cb = tl_cb[slot]
                    if tl_modes[best[2]]:
                        cb()  # DIRECT: ScheduledCall-equivalent
                    else:
                        # PERSISTENT: Timeout-equivalent lane hop
                        lane.append((time, next(seq), cb, None))
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
        return self.now

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if nothing is queued.

        Sheds lazily-cancelled heap heads as a side effect, so a raw
        reference to ``_heap[0]`` obtained before calling ``peek()`` is
        invalidated — see the :meth:`run` invariant.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            dead = heapq.heappop(heap)[2]
            dead.popped = True
            self._cancelled_pending -= 1
        timeline = self.timeline
        tl_heap = timeline._heap
        tl_armed = timeline._chan_armed
        while tl_heap and tl_heap[0][1] != tl_armed[tl_heap[0][4]]:
            heapq.heappop(tl_heap)
            timeline._stale_pending -= 1
            timeline.stale_dropped += 1
        if heap:
            best_time = heap[0][0]
            if tl_heap and tl_heap[0][0] < best_time:
                best_time = tl_heap[0][0]
        elif tl_heap:
            best_time = tl_heap[0][0]
        else:
            best_time = None
        if self._immediate:
            lane_time = self._immediate[0][0]
            if best_time is None or lane_time <= best_time:
                return lane_time
        return best_time


class SimEvent:
    """A one-shot event processes can wait on.

    Lifecycle: pending → succeeded (with a value) or failed (with an
    exception). Waiters registered after the fact are resumed
    immediately (through the lane), so late subscription is safe.

    An event may also be *abandoned* (:meth:`abandon`): its waiter is
    known dead — e.g. a fault-killed worker parked on a queue — and a
    channel must never deliver an item to it. Abandonment is orthogonal
    to the pending/succeeded/failed lifecycle: nothing fires.
    """

    __slots__ = ("_engine", "_status", "_value", "_callbacks", "abandoned")

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._status = _PENDING
        self._value: Any = None
        #: lazily allocated — most events on the hot paths trigger with
        #: zero or one waiter, so the empty list would be pure churn
        self._callbacks: Optional[list[Callable[["SimEvent"], None]]] = None
        self.abandoned = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._status != _PENDING

    @property
    def ok(self) -> bool:
        """True iff the event succeeded."""
        return self._status == _SUCCEEDED

    @property
    def failed(self) -> bool:
        """True iff the event failed."""
        return self._status == _FAILED

    @property
    def value(self) -> Any:
        """The success value (or the exception if failed)."""
        return self._value

    # -- transitions -----------------------------------------------------
    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event successfully, resuming all waiters."""
        if self._status != _PENDING:
            raise SimulationError("event already triggered")
        self._status = _SUCCEEDED
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Fire the event as a failure; waiters see the exception thrown."""
        if self._status != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._status = _FAILED
        self._value = exception
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = None
            # inlined call_soon (hot: once per triggered event)
            engine = self._engine
            imm = engine._immediate
            now = engine.now
            seq = engine._seq
            for cb in callbacks:
                imm.append((now, next(seq), cb, self))

    # -- waiting ----------------------------------------------------------
    def _wait(self, callback: Callable[["SimEvent"], None]) -> None:
        """Register ``callback(event)``; runs (via the lane) once triggered."""
        if self._status != _PENDING:
            engine = self._engine  # inlined call_soon
            engine._immediate.append(
                (engine.now, next(engine._seq), callback, self)
            )
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def abandon(self) -> None:
        """Mark the event as never-to-be-consumed and drop its waiters.

        Idempotent, and a no-op on already-triggered events. Used when
        the process waiting on this event is dead (crashed node): a
        later ``succeed()`` from a queue would hand an item to a corpse
        and silently lose it.
        """
        if self._status == _PENDING:
            self.abandoned = True
            self._callbacks = None

    @property
    def has_waiters(self) -> bool:
        """True if at least one callback is registered and pending."""
        return bool(self._callbacks)


class Timeout(SimEvent):
    """An event that succeeds a fixed virtual delay after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: Engine, delay: float, value: Any = None) -> None:
        super().__init__(engine)
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        engine.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class Process:
    """A simulated thread: a generator driven by the engine.

    The generator may ``yield`` any waitable; the value sent back is the
    waitable's success value. ``return value`` inside the generator sets
    the success value of :attr:`completion`, which is itself waitable —
    so processes can fork and join each other.
    """

    __slots__ = (
        "engine",
        "name",
        "_generator",
        "_status",
        "_value",
        "_callbacks",
        "_completion",
        "_started",
        "_step_cb",
        "_send",
    )

    def __init__(
        self, engine: Engine, generator: Generator, name: Optional[str] = None
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__} "
                "(did you call the function with ()?)"
            )
        self.engine = engine
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        # The process is its own completion waitable: most processes
        # (network transfers, fire-and-forget workers) finish with
        # nobody joining them, so the dedicated completion SimEvent is
        # materialized lazily via the :attr:`completion` property.
        self._status = _PENDING
        self._value: Any = None
        self._callbacks: Optional[list[Callable]] = None
        self._completion: Optional[SimEvent] = None
        # the same bound methods are used on every yield; binding them
        # once avoids a descriptor allocation per step
        self._step_cb = self._step
        self._send = generator.send
        # inlined call_soon (hot: once per spawned process)
        engine._immediate.append(
            (engine.now, next(engine._seq), self._step_cb, None)
        )

    @property
    def completion(self) -> SimEvent:
        """The completion event, materialized on first access.

        Pending callbacks registered directly on the process migrate to
        the event, so mixing ``yield process`` with explicit
        ``process.completion`` use observes one consistent waitable.
        """
        event = self._completion
        if event is None:
            event = self._completion = SimEvent(self.engine)
            if self._status == _SUCCEEDED:
                event.succeed(self._value)
            elif self._status == _FAILED:
                event.fail(self._value)
            elif self._callbacks:
                event._callbacks = self._callbacks
                self._callbacks = None
        return event

    @property
    def alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._status == _PENDING

    # SimEvent-compatible views, so ``yield process`` waiters (and the
    # all_of/any_of combinators) can read the result straight off the
    # process without forcing the completion event into existence.
    @property
    def triggered(self) -> bool:
        return self._status != _PENDING

    @property
    def ok(self) -> bool:
        return self._status == _SUCCEEDED

    @property
    def failed(self) -> bool:
        return self._status == _FAILED

    @property
    def value(self) -> Any:
        return self._value

    def _wait(self, callback: Callable[[SimEvent], None]) -> None:
        """Register ``callback(process)``; runs (via the lane) once done."""
        if self._completion is not None:
            self._completion._wait(callback)
        elif self._status != _PENDING:
            self.engine.call_soon(callback, self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def _finish(self, status: int, value: Any) -> None:
        self._status = status
        self._value = value
        if self._completion is not None:
            if status == _SUCCEEDED:
                self._completion.succeed(value)
            else:
                self._completion.fail(value)
        elif self._callbacks:
            callbacks = self._callbacks
            self._callbacks = None
            engine = self.engine  # inlined call_soon
            imm = engine._immediate
            now = engine.now
            seq = engine._seq
            for cb in callbacks:
                imm.append((now, next(seq), cb, self))

    def _step(self, fired: Optional[SimEvent]) -> None:
        try:
            if fired is None:
                target = self._send(None)
            elif fired._status == _FAILED:
                target = self._generator.throw(fired.value)
            else:
                target = self._send(fired.value)
        except StopIteration as stop:
            self._finish(_SUCCEEDED, stop.value)
            return
        except BaseException as exc:
            if self._callbacks or (
                self._completion is not None and self._completion.has_waiters
            ):
                self._finish(_FAILED, exc)
                return
            raise SimulationError(
                f"unhandled exception in simulated process {self.name!r}"
            ) from exc
        try:
            wait = target._wait
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            ) from None
        wait(self._step_cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"


def all_of(engine: Engine, events: Iterable) -> SimEvent:
    """An event that succeeds when every input waitable has succeeded.

    The success value is the list of individual values in input order.
    If any input fails, the combined event fails with that exception
    (first failure wins).
    """
    events = list(events)
    combined = SimEvent(engine)
    if not events:
        combined.succeed([])
        return combined
    remaining = [len(events)]
    values: list[Any] = [None] * len(events)

    def make_cb(index: int):
        def on_fire(ev: SimEvent) -> None:
            if combined.triggered:
                return
            if ev.failed:
                combined.fail(ev.value)
                return
            values[index] = ev.value
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.succeed(list(values))

        return on_fire

    for i, ev in enumerate(events):
        ev._wait(make_cb(i))
    return combined


def any_of(engine: Engine, events: Iterable) -> SimEvent:
    """An event that succeeds when the first input waitable *succeeds*.

    The success value is ``(index, value)`` of the winner. Failures are
    not fatal while any input might still succeed: the combined event
    fails only once **every** input has failed, and then with the first
    failure's exception. (An earlier version failed as soon as the first
    triggered waitable failed, which let a fast failure mask a slower
    success — exactly the race recovery code hits when one of several
    redundant attempts dies first.)
    """
    events = list(events)
    if not events:
        raise SimulationError("any_of() needs at least one event")
    combined = SimEvent(engine)
    failed = [0]
    first_failure: list[Optional[BaseException]] = [None]

    def make_cb(index: int):
        def on_fire(ev: SimEvent) -> None:
            if combined.triggered:
                return
            if ev.failed:
                if first_failure[0] is None:
                    first_failure[0] = ev.value
                failed[0] += 1
                if failed[0] == len(events):
                    combined.fail(first_failure[0])
            else:
                combined.succeed((index, ev.value))

        return on_fire

    for i, ev in enumerate(events):
        ev._wait(make_cb(i))
    return combined
