"""Discrete-event simulation substrate.

This package is the stand-in for the paper's physical testbed (a 32-node
partition of the PNNL Cascade cluster). It provides:

- :mod:`repro.sim.engine` — the event kernel: a virtual clock, an event
  heap, and generator-based processes (simulated threads).
- :mod:`repro.sim.resources` — FIFO resources and a processor-sharing
  bandwidth resource (used for per-node memory bandwidth).
- :mod:`repro.sim.queues` — FIFO and priority mailboxes/ready-queues.
- :mod:`repro.sim.mutex` — a pthread-mutex model with lock/unlock cost.
- :mod:`repro.sim.network` — NICs and message transfer with congestion.
- :mod:`repro.sim.node` / :mod:`repro.sim.cluster` — the machine model.
- :mod:`repro.sim.cost` — calibrated operation cost models.
- :mod:`repro.sim.trace` — execution tracing (the PaRSEC instrumentation
  stand-in used to reproduce Figures 10-13).
- :mod:`repro.sim.faults` — seed-driven fault injection (task failures,
  message drop/delay/duplication, stragglers, node crashes).

Everything is deterministic: identical inputs produce identical event
orderings and identical virtual timestamps — including injected faults,
which are pure functions of a master seed and stable decision keys.
"""

from repro.sim.engine import Engine, Process, SimEvent, Timeout, all_of, any_of
from repro.sim.resources import Resource, BandwidthResource
from repro.sim.queues import Store, PriorityStore
from repro.sim.mutex import SimMutex
from repro.sim.network import Network, Message, NIC
from repro.sim.cost import MachineModel
from repro.sim.node import Node
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.trace import TraceRecorder, TraceEvent, TaskCategory
from repro.sim.faults import (
    FaultInjector,
    FaultPlan,
    FaultReport,
    NodeCrash,
    Straggler,
)

__all__ = [
    "Engine",
    "Process",
    "SimEvent",
    "Timeout",
    "all_of",
    "any_of",
    "Resource",
    "BandwidthResource",
    "Store",
    "PriorityStore",
    "SimMutex",
    "Network",
    "Message",
    "NIC",
    "MachineModel",
    "Node",
    "Cluster",
    "ClusterConfig",
    "TraceRecorder",
    "TraceEvent",
    "TaskCategory",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "NodeCrash",
    "Straggler",
]
