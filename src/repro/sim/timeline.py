"""Array-backed hot core for shape-homogeneous event classes.

The engine heap is the right structure for *irregular* events — every
entry carries its own callback closure and cancellation handle. But the
bulk of a PaRSEC simulation is three regular streams: GEMM/SORT
completion timeouts in the worker threads, per-message service timeouts
in the communication threads, and bandwidth-resource rescheduling. Each
of those allocates a :class:`~repro.sim.engine.Timeout` (itself a
``SimEvent``) plus a :class:`~repro.sim.engine.ScheduledCall` per event,
only to throw both away microseconds later.

:class:`BatchedTimeline` batches these homogeneous classes into a
struct-of-arrays store: one ``(time, seq, kind, node, slot)`` row per
pending event, with all per-channel state (parked continuation, armed
sequence number) held in parallel columns indexed by ``slot``. Arming an
event is a single tuple push — no object allocation at all — and
cancellation is a column write (the stale row is shed lazily, exactly
like a lazily-cancelled ``ScheduledCall``).

Ordering contract (DESIGN.md §6)
--------------------------------
Timeline rows draw their sequence numbers from the **same** counter as
heap and immediate-lane entries, and the engine merges all three
sources by ``(time, seq)``. The drain order is therefore *identical* to
pushing every timeline event through ``heapq`` as a ``Timeout`` — which
is why converting a producer to the timeline keeps virtual timings
bitwise unchanged (the committed golden digests pin this for every
workload × runtime).

Two firing modes mirror the two legacy shapes:

- ``PERSISTENT`` (``Timeout``-equivalent): the parked continuation is
  resumed *through the immediate lane* (``call_soon``), consuming one
  sequence number at fire time — exactly what ``Timeout.succeed`` →
  ``_dispatch`` does.
- ``DIRECT`` (``ScheduledCall``-equivalent): the callback runs straight
  from the drain slot, consuming no extra sequence number — exactly
  what ``Engine.schedule`` does. Used by bandwidth rescheduling.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

import numpy as np

from repro.util.errors import SimulationError

__all__ = [
    "BatchedTimeline",
    "TimelineTimer",
    "PERSISTENT",
    "DIRECT",
    "KIND_TASK",
    "KIND_COMM",
    "KIND_RESOURCE",
    "KIND_BANDWIDTH",
    "KIND_NET",
]

#: fire by resuming the parked continuation through the immediate lane
#: (one sequence number at fire time, like ``Timeout``)
PERSISTENT = 0
#: fire by calling the channel callback directly from the drain slot
#: (no extra sequence number, like ``ScheduledCall``)
DIRECT = 1

# The standard kinds, registered by every BatchedTimeline at creation.
KIND_TASK = 0  # worker-thread task timeouts (GEMM/SORT completions)
KIND_COMM = 1  # comm-thread per-message service timeouts
KIND_RESOURCE = 2  # capacity-1 Resource hold durations (NIC channels)
KIND_BANDWIDTH = 3  # BandwidthResource wakeups (DIRECT mode)
KIND_NET = 4  # per-message wire latency / fault backoff in transfers

#: compaction threshold for stale rows, mirroring Engine._COMPACT_MIN
_COMPACT_MIN = 64

_heappush = heapq.heappush


class TimelineTimer:
    """A reusable waitable bound to one timeline channel.

    ``yield timer.after(delay)`` is the allocation-free replacement for
    ``yield engine.timeout(delay)`` on paths where at most one timeout
    is outstanding per owner (a worker thread, a comm thread, a
    capacity-1 resource holder). The continuation is parked in the
    channel's callback column and resumed through the immediate lane
    with value ``None`` — sequence-identical to a ``Timeout`` carrying
    its default ``None`` value.
    """

    __slots__ = ("_timeline", "slot", "_kind", "_node", "_engine", "_armed", "_heap")

    def __init__(self, timeline: "BatchedTimeline", slot: int) -> None:
        self._timeline = timeline
        self.slot = slot
        # the row's kind/node columns are fixed for the channel's whole
        # lifetime — caching them keeps after() free of column reads.
        # The engine, armed column, and heap list are identity-stable
        # (the timeline only ever mutates them in place), so they are
        # cached too.
        self._kind = timeline._chan_kind[slot]
        self._node = timeline._chan_node[slot]
        self._engine = timeline._engine
        self._armed = timeline._chan_armed
        self._heap = timeline._heap

    def after(self, delay: float) -> "TimelineTimer":
        """Arm the channel ``delay`` virtual seconds from now.

        Inlined :meth:`BatchedTimeline.arm` fast path — this is the
        single hottest call in a converted simulation (one per task/
        message service), so the extra frame is worth shaving. Error
        cases fall through to ``arm()`` for its diagnostics.
        """
        armed = self._armed
        slot = self.slot
        if delay < 0 or armed[slot] != -1:
            self._timeline.arm(slot, delay)  # raises with the precise message
            return self
        engine = self._engine
        seq = next(engine._seq)
        armed[slot] = seq
        _heappush(
            self._heap,
            (engine.now + delay, seq, self._kind, self._node, slot),
        )
        self._timeline.armed_total += 1
        return self

    def close(self) -> None:
        """Recycle the underlying channel (see :meth:`BatchedTimeline.close`).

        Call when the owning process retires (workers are respawned per
        barrier level); the slot is reused by the next ``timer()`` or
        ``open()`` instead of growing the channel columns forever.
        """
        self._timeline.close(self.slot)

    def _wait(self, callback: Callable) -> None:
        self._timeline._chan_cb[self.slot] = callback


class BatchedTimeline:
    """Struct-of-arrays event store merged with the engine heap/lane.

    Channels are the unit of registration: a channel belongs to a kind,
    remembers its owner node (observability only), and holds at most
    one armed row at a time. Rows live in a heap of bare
    ``(time, seq, kind, node, slot)`` tuples; all mutable state is in
    the parallel channel columns, so arming, firing, and cancelling
    never allocate.
    """

    def __init__(self, engine: Any) -> None:
        self._engine = engine
        #: pending rows: (time, seq, kind, node, slot) tuples, heap-ordered
        self._heap: list[tuple[float, int, int, int, int]] = []
        # kind registry
        self._kind_names: list[str] = []
        self._kind_modes: list[int] = []
        # struct-of-arrays channel columns, indexed by slot
        self._chan_armed: list[int] = []  # armed seq, -1 when disarmed
        self._chan_cb: list[Optional[Callable]] = []
        self._chan_kind: list[int] = []
        self._chan_node: list[int] = []
        self._free: list[int] = []
        #: rows made stale by disarm/re-arm, still occupying heap slots
        self._stale_pending = 0
        # statistics
        self.armed_total = 0
        self.fired_total = 0
        self.stale_dropped = 0
        for name, mode in (
            ("task", PERSISTENT),
            ("comm", PERSISTENT),
            ("resource", PERSISTENT),
            ("bandwidth", DIRECT),
            ("net", PERSISTENT),
        ):
            self.register_kind(name, mode)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_kind(self, name: str, mode: int = PERSISTENT) -> int:
        """Add an event kind; returns its integer id (the kind column)."""
        if mode not in (PERSISTENT, DIRECT):
            raise SimulationError(f"unknown timeline kind mode {mode!r}")
        self._kind_names.append(name)
        self._kind_modes.append(mode)
        return len(self._kind_names) - 1

    def open(
        self, kind: int, node: int = -1, callback: Optional[Callable] = None
    ) -> int:
        """Allocate a channel of ``kind``; returns its slot index."""
        if not 0 <= kind < len(self._kind_names):
            raise SimulationError(f"unregistered timeline kind {kind}")
        if self._free:
            slot = self._free.pop()
            self._chan_armed[slot] = -1
            self._chan_cb[slot] = callback
            self._chan_kind[slot] = kind
            self._chan_node[slot] = node
        else:
            slot = len(self._chan_armed)
            self._chan_armed.append(-1)
            self._chan_cb.append(callback)
            self._chan_kind.append(kind)
            self._chan_node.append(node)
        return slot

    def close(self, slot: int) -> None:
        """Recycle a channel; any armed row goes stale."""
        self.disarm(slot)
        self._chan_cb[slot] = None
        self._free.append(slot)

    def timer(self, kind: int, node: int = -1) -> TimelineTimer:
        """A reusable :class:`TimelineTimer` on a fresh channel."""
        return TimelineTimer(self, self.open(kind, node))

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self, slot: int, delay: float) -> int:
        """Schedule the channel's event ``delay`` seconds from now.

        Returns the sequence number stamped on the row — drawn from the
        engine's shared counter at the same point ``Engine.schedule``
        would draw it, which is what keeps the merged drain order
        bitwise identical to the heap path.
        """
        if delay < 0:
            raise SimulationError(f"cannot arm timeline at negative delay {delay}")
        if self._chan_armed[slot] != -1:
            raise SimulationError(
                f"timeline channel {slot} ({self._kind_names[self._chan_kind[slot]]}) "
                "re-armed while armed"
            )
        engine = self._engine
        seq = next(engine._seq)
        self._chan_armed[slot] = seq
        heapq.heappush(
            self._heap,
            (engine.now + delay, seq, self._chan_kind[slot], self._chan_node[slot], slot),
        )
        self.armed_total += 1
        return seq

    def disarm(self, slot: int) -> None:
        """Cancel the channel's pending row, if any (lazy, like
        ``ScheduledCall.cancel``: the heap row stays until shed)."""
        if self._chan_armed[slot] != -1:
            self._chan_armed[slot] = -1
            self._note_stale()

    def rearm(self, slot: int, delay: float) -> int:
        """Atomically cancel any pending row and arm a fresh one."""
        self.disarm(slot)
        return self.arm(slot, delay)

    def arm_batch(self, slots: list[int], delays: "np.ndarray | list[float]") -> None:
        """Arm many channels in one vectorized plan.

        Sequence numbers are stamped in input order (exactly as a loop
        of ``arm()`` calls would), then the rows are lexsorted by
        ``(time, seq)`` with numpy and merged into the heap in one
        heapify instead of ``len(slots)`` sifts — the ragged-batch
        trick, applied to event insertion. The drain order is identical
        to the loop by construction.
        """
        if len(slots) == 0:
            return
        engine = self._engine
        now = engine.now
        times = now + np.asarray(delays, dtype=np.float64)
        if times.size != len(slots):
            raise SimulationError("arm_batch: slots and delays length mismatch")
        if float(times.min()) < now:
            raise SimulationError("cannot arm timeline at negative delay")
        seqs = np.empty(len(slots), dtype=np.int64)
        for i, slot in enumerate(slots):
            if self._chan_armed[slot] != -1:
                raise SimulationError(
                    f"timeline channel {slot} re-armed while armed (batch)"
                )
            seq = next(engine._seq)
            self._chan_armed[slot] = seq
            seqs[i] = seq
        order = np.lexsort((seqs, times))
        chan_kind = self._chan_kind
        chan_node = self._chan_node
        # float()/int() strip the numpy scalar types: row times feed the
        # virtual clock, which must stay a plain Python float
        rows = [
            (
                float(times[i]),
                int(seqs[i]),
                chan_kind[slots[i]],
                chan_node[slots[i]],
                slots[i],
            )
            for i in map(int, order)
        ]
        if self._heap:
            self._heap.extend(rows)
            heapq.heapify(self._heap)
        else:
            # a (time, seq)-sorted list is already a valid binary heap;
            # extend (not rebind) keeps the list identity stable for the
            # aliases cached by TimelineTimer and Engine.run
            self._heap.extend(rows)
        self.armed_total += len(rows)

    # ------------------------------------------------------------------
    # draining (called by Engine.run / Engine.peek)
    # ------------------------------------------------------------------
    def _shed_stale(self) -> None:
        """Pop rows whose channel was disarmed or re-armed since push."""
        heap = self._heap
        armed = self._chan_armed
        while heap and heap[0][1] != armed[heap[0][4]]:
            heapq.heappop(heap)
            self._stale_pending -= 1
            self.stale_dropped += 1

    def _fire(self, row: tuple[float, int, int, int, int]) -> None:
        """Dispatch one popped row (the engine has set the clock)."""
        slot = row[4]
        self._chan_armed[slot] = -1
        self.fired_total += 1
        cb = self._chan_cb[slot]
        if self._kind_modes[row[2]]:
            cb()  # DIRECT: ScheduledCall-equivalent, no extra seq
        else:
            self._engine.call_soon(cb, None)  # PERSISTENT: Timeout-equivalent

    def _note_stale(self) -> None:
        self._stale_pending += 1
        if (
            self._stale_pending >= _COMPACT_MIN
            and self._stale_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop stale rows and re-heapify in place (order-preserving)."""
        armed = self._chan_armed
        live = [row for row in self._heap if row[1] == armed[row[4]]]
        self.stale_dropped += len(self._heap) - len(live)
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._stale_pending = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Rows currently in the timeline heap (live + stale)."""
        return len(self._heap)

    @property
    def stale_pending(self) -> int:
        """Disarmed rows still occupying heap slots."""
        return self._stale_pending

    @property
    def channels(self) -> int:
        """Channels allocated (including recycled free slots)."""
        return len(self._chan_armed)

    def counts_by_kind(self) -> dict[str, int]:
        """Pending live rows per kind name (vectorized over the columns)."""
        if not self._heap:
            return {}
        rows = np.array(
            [(row[1], row[2], row[4]) for row in self._heap], dtype=np.int64
        )
        armed = np.fromiter(
            (self._chan_armed[int(s)] for s in rows[:, 2]),
            dtype=np.int64,
            count=len(rows),
        )
        live = rows[rows[:, 0] == armed]
        kinds, counts = np.unique(live[:, 1], return_counts=True)
        return {
            self._kind_names[int(k)]: int(c) for k, c in zip(kinds, counts)
        }
