"""Interconnect model: NICs, messages, and transfer processes.

Each node owns a :class:`NIC` with one transmit and one receive channel,
each a unit-capacity FIFO server. A message occupies the sender's TX
channel for its serialization time, crosses the wire after a fixed
latency, then occupies the receiver's RX channel for the same time
(cut-through, not store-and-forward). Congestion is emergent: when a
runtime floods the network — as PaRSEC variant v2 does at startup,
Figure 11 — deep FIFO backlogs form at the NICs and delivery times grow,
with no special-case code.

Intra-node messages bypass the NIC entirely and deliver immediately;
their memory cost, if any, is charged by the layer that owns the data
(Global Arrays or the PaRSEC data repository).
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.obs.registry import NULL_METRICS, MetricsRegistry
from repro.sim.engine import Engine, Process, ScheduledCall, SimEvent
from repro.sim.resources import Resource
from repro.sim.timeline import KIND_NET, TimelineTimer
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.cost import MachineModel
    from repro.sim.faults import FaultInjector
    from repro.sim.node import Node

__all__ = [
    "BatchPayload",
    "CoalescePolicy",
    "Coalescer",
    "Message",
    "NIC",
    "Network",
]


class Message:
    """One network message; ``payload`` is opaque to the transport."""

    __slots__ = ("seq", "src", "dst", "size_bytes", "payload", "tag", "sent_at")

    def __init__(
        self,
        seq: int,
        src: int,
        dst: int,
        size_bytes: float,
        payload: Any,
        tag: str,
        sent_at: float,
    ) -> None:
        self.seq = seq
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.payload = payload
        self.tag = tag
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.seq} {self.src}->{self.dst} "
            f"{self.size_bytes:.0f}B tag={self.tag!r})"
        )


class _LocalDelivery(SimEvent):
    """A same-node message: no wire, no NIC — one lane hop to delivery.

    Seq-equivalent to the transfer :class:`Process` that used to drive
    an empty-bodied ``_transfer`` generator for ``src == dst`` (one
    ``call_soon`` at creation; success value — the message — dispatched
    from the same drain slot), but without the generator frame or the
    separate completion event. Waitable like the remote path: ``yield``
    it for delivery confirmation.
    """

    __slots__ = ("_message", "_dst_node", "_inbox", "_on_deliver")

    def __init__(self, engine, message, dst_node, inbox, on_deliver) -> None:
        super().__init__(engine)
        self._message = message
        self._dst_node = dst_node
        self._inbox = inbox
        self._on_deliver = on_deliver
        engine.call_soon(self._fire, None)

    def _fire(self, _arg) -> None:
        if self._on_deliver is not None:
            self._on_deliver(self._message)
        else:
            self._dst_node.inbox(self._inbox).put(self._message)
        self.succeed(self._message)


class NIC:
    """One node's network interface: serialized TX and RX channels."""

    def __init__(self, engine: Engine, node_id: int) -> None:
        self.tx = Resource(engine, capacity=1, name=f"nic{node_id}.tx")
        self.rx = Resource(engine, capacity=1, name=f"nic{node_id}.rx")

    @property
    def tx_backlog(self) -> int:
        """Messages waiting for the transmit channel."""
        return self.tx.queue_length

    @property
    def rx_backlog(self) -> int:
        """Messages waiting for the receive channel."""
        return self.rx.queue_length


class Network:
    """Routes messages between registered nodes.

    :meth:`send` is fire-and-forget from the caller's point of view: it
    spawns a transfer process and returns it, so a sender *may* wait on
    delivery (blocking semantics, as legacy ``GET_HASH_BLOCK`` needs) or
    ignore it (PaRSEC's implicit asynchronous transfers).
    """

    def __init__(
        self,
        engine: Engine,
        machine: "MachineModel",
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.metrics = metrics
        self._nodes: dict[int, "Node"] = {}
        self._seq = itertools.count()
        #: set by Cluster.install_faults(); message fates apply per
        #: transmission attempt, with ack-timeout retransmission
        self.faults: Optional["FaultInjector"] = None
        # statistics
        self.messages_sent = 0
        self.bytes_sent = 0.0
        self.remote_messages = 0
        #: recycled wire-latency timeline channels — a transfer borrows
        #: one for its lifetime, so the pool size tracks the peak number
        #: of concurrent remote transfers
        self._timer_pool: list[TimelineTimer] = []
        #: wire bytes of duplicated transmissions: a ``dup`` fate crosses
        #: the receiver's RX channel twice, and the second crossing is
        #: counted here (never in ``bytes_sent``), so NIC occupancy
        #: reconciles with the byte counters under fault sweeps
        self.dup_bytes = 0.0

    def register(self, node: "Node") -> None:
        """Attach a node; its id must be unique within the network."""
        if node.node_id in self._nodes:
            raise SimulationError(f"node {node.node_id} registered twice")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "Node":
        """Look up a registered node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"unknown node {node_id}") from None

    def send(
        self,
        src: int,
        dst: int,
        size_bytes: float,
        payload: Any,
        inbox: Optional[str] = None,
        tag: str = "",
        on_deliver=None,
    ) -> "Process | _LocalDelivery":
        """Start delivering ``payload`` to ``dst``.

        Exactly one of ``inbox`` (named mailbox at the destination) or
        ``on_deliver`` (callback invoked with the :class:`Message` at
        arrival time — used for request/response protocols like the
        Global Arrays handlers) must be given. Returns the transfer
        process; wait on it for delivery confirmation.
        """
        if size_bytes < 0:
            raise SimulationError(f"negative message size {size_bytes}")
        if (inbox is None) == (on_deliver is None):
            raise SimulationError("send() needs exactly one of inbox/on_deliver")
        message = Message(
            # tags repeat per task class / array; interning keeps one
            # string alive however many messages carry it
            next(self._seq), src, dst, size_bytes, payload, sys.intern(tag),
            self.engine.now,
        )
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if src != dst:
            self.remote_messages += 1
        if self.metrics.enabled:
            self.metrics.inc("net.messages")
            self.metrics.inc("net.bytes", size_bytes)
            self.metrics.observe("net.message_bytes", size_bytes)
            if src != dst:
                self.metrics.inc("net.remote_messages")
                self.metrics.inc("net.link.bytes", size_bytes, src=src, dst=dst)
        if src == dst:
            # intra-node: no wire, no NIC, no generator machinery
            return _LocalDelivery(
                self.engine, message, self.node(dst), inbox, on_deliver
            )
        # the interned tag alone names the process: per-message f-string
        # names cost an allocation on every remote send and only ever
        # surface in debugging repr()s
        return Process(
            self.engine,
            self._transfer(message, inbox, on_deliver),
            name=message.tag or "xfer",
        )

    def _transfer(self, message: Message, inbox: Optional[str], on_deliver):
        # remote messages only — same-node sends short-circuit in send()
        src_node = self.node(message.src)
        dst_node = self.node(message.dst)
        metrics = self.metrics
        wire = self.machine.wire_time(message.size_bytes)
        # wire latency (and fault backoff) ride a pooled timeline channel:
        # arm + lane hop consumes the same two sequence numbers the old
        # Timeout did (schedule + call_soon), with no per-hop allocation
        pool = self._timer_pool
        timer = pool.pop() if pool else self.engine.timeline.timer(KIND_NET)
        latency = self.machine.net_latency_s
        attempt = 0
        try:
            while True:
                if metrics.enabled:
                    metrics.gauge_max(
                        "nic.backlog.hwm",
                        src_node.nic.tx_backlog,
                        node=message.src,
                        dir="tx",
                    )
                yield from src_node.nic.tx.use(wire)
                fate = "ok"
                faults = self.faults
                if faults is not None:
                    fate = faults.plan.message_fate(
                        message.tag, message.seq, attempt
                    )
                if fate == "drop":
                    # lost on the wire: wait out the ack timeout
                    # (exponential backoff), then retransmit
                    assert faults is not None  # fates only exist under an injector
                    report = faults.report
                    report.messages_dropped += 1
                    report.retransmits += 1
                    if metrics.enabled:
                        metrics.inc("net.retransmits")
                    backoff = faults.plan.backoff(attempt)
                    report.recovery_overhead_s += backoff
                    yield timer.after(backoff)
                    attempt += 1
                    continue
                if fate == "delay":
                    assert faults is not None
                    faults.report.messages_delayed += 1
                    yield timer.after(faults.plan.msg_delay_s)
                yield timer.after(latency)
                if metrics.enabled:
                    metrics.gauge_max(
                        "nic.backlog.hwm",
                        dst_node.nic.rx_backlog,
                        node=message.dst,
                        dir="rx",
                    )
                yield from dst_node.nic.rx.use(wire)
                if fate == "dup":
                    # the duplicate also crosses the receiver's NIC, then
                    # is discarded by sequence number (exactly-once)
                    assert faults is not None
                    faults.report.messages_duplicated += 1
                    self.dup_bytes += message.size_bytes
                    if metrics.enabled:
                        metrics.inc("net.dup_bytes", message.size_bytes)
                    yield from dst_node.nic.rx.use(wire)
                break
        finally:
            # return the channel to the pool even if the generator is
            # torn down mid-flight (engine drained with transfers open);
            # disarm covers the torn-down-while-parked case so the next
            # borrower finds the channel clean
            self.engine.timeline.disarm(timer.slot)
            pool.append(timer)
        if on_deliver is not None:
            on_deliver(message)
        else:
            dst_node.inbox(inbox).put(message)
        return message


# ----------------------------------------------------------------------
# per-destination message coalescing (opt-in, see RunConfig.coalescing)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoalescePolicy:
    """Knobs for the per-destination aggregation window.

    A submitted message opens (or joins) a window keyed by destination;
    the window flushes after ``window_s`` simulated seconds, or as soon
    as ``max_batch`` messages have pooled, whichever comes first. A
    window holding one message flushes as a plain send — byte-for-byte
    what the sender would have produced without the coalescer — so the
    policy only changes the wire when it actually merges traffic.
    """

    #: how long the first message in a window waits for company
    window_s: float = 5.0e-6
    #: pool at most this many messages before flushing early
    max_batch: int = 8


class BatchPayload:
    """Several logical payloads riding one wire message.

    The transport treats it like any other payload; receivers that
    opted into coalescing unpack and service the items in submit
    order (FIFO within the batch, matching un-coalesced delivery).
    ``sizes`` keeps each item's individual wire size so a receiver can
    re-send one item on its own (the PaRSEC forward-on-moved-consumer
    path needs it).
    """

    __slots__ = ("items", "sizes")

    def __init__(self, items: list, sizes: list[float]) -> None:
        self.items = items
        self.sizes = sizes

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)


class _Window:
    """Open aggregation window toward one destination."""

    __slots__ = ("items", "item_sizes", "size_bytes", "tags", "flush_call")

    def __init__(self) -> None:
        self.items: list = []
        self.item_sizes: list[float] = []
        self.size_bytes = 0.0
        self.tags: list[str] = []
        self.flush_call: Optional[ScheduledCall] = None


class Coalescer:
    """Per-destination aggregation in front of :meth:`Network.send`.

    One instance sits on each participating node (per traffic lane —
    GA requests and PaRSEC dataflow keep separate coalescers so
    control-plane and bulk traffic never merge). ``submit`` replaces a
    direct ``send``: messages to the same remote destination that land
    inside the window leave as ONE wire message of summed size — one
    latency charge — wrapped in a :class:`BatchPayload`. Local (same
    node) messages bypass the window entirely; they never touch the
    wire in the first place.

    Flush order is deterministic: windows are armed through
    :meth:`Engine.schedule`, so they fire in ``(time, seq)`` order like
    every other simulated event.
    """

    def __init__(
        self,
        network: Network,
        src: int,
        policy: CoalescePolicy,
        inbox: str,
        batch_tag: str = "batch",
    ) -> None:
        self.network = network
        self.src = src
        self.policy = policy
        self.inbox = inbox
        self.batch_tag = batch_tag
        self._windows: dict[int, _Window] = {}
        # statistics
        self.batches = 0
        self.batched_items = 0
        self.messages_saved = 0

    def submit(self, dst: int, size_bytes: float, payload: Any, tag: str = "") -> None:
        """Queue one message for ``dst``; flushes per the policy."""
        if dst == self.src or self.policy.max_batch <= 1:
            self.network.send(
                self.src, dst, size_bytes, payload, inbox=self.inbox, tag=tag
            )
            return
        window = self._windows.get(dst)
        if window is None:
            window = _Window()
            self._windows[dst] = window
        if not window.items:
            window.flush_call = self.network.engine.schedule(
                self.policy.window_s, self._flush, dst
            )
        window.items.append(payload)
        window.item_sizes.append(size_bytes)
        window.size_bytes += size_bytes
        window.tags.append(tag)
        if len(window.items) >= self.policy.max_batch:
            if window.flush_call is not None:
                window.flush_call.cancel()
            self._flush(dst)

    def _flush(self, dst: int) -> None:
        window = self._windows[dst]
        items = window.items
        if not items:  # pragma: no cover - defensive (cancelled + refired)
            return
        if len(items) == 1:
            # a lone message leaves exactly as an un-coalesced send would
            self.network.send(
                self.src,
                dst,
                window.size_bytes,
                items[0],
                inbox=self.inbox,
                tag=window.tags[0],
            )
        else:
            self.batches += 1
            self.batched_items += len(items)
            self.messages_saved += len(items) - 1
            metrics = self.network.metrics
            if metrics.enabled:
                metrics.inc("net.coalesce.batches")
                metrics.inc("net.coalesce.batched_items", len(items))
                metrics.inc("net.coalesce.messages_saved", len(items) - 1)
            self.network.send(
                self.src,
                dst,
                window.size_bytes,
                BatchPayload(list(items), list(window.item_sizes)),
                inbox=self.inbox,
                tag=self.batch_tag,
            )
        window.items = []
        window.item_sizes = []
        window.size_bytes = 0.0
        window.tags = []
        window.flush_call = None
