"""Execution tracing — the stand-in for PaRSEC's instrumentation module.

The paper generates Figures 10-13 with "PaRSEC's native performance
instrumentation module", and notes the same API can instrument arbitrary
code (it traces the *original* NWChem run too, Fig. 12). We mirror that:
:class:`TraceRecorder` is runtime-agnostic; both the legacy CGP runtime
and the PaRSEC runtime record :class:`TraceEvent` spans into it, one row
per (node, thread), colour-coded by :class:`TaskCategory` exactly like
the paper's traces (red GEMM, blue read-A, purple read-B, yellow
reduction, light-green write, grey idle).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

__all__ = ["TaskCategory", "TraceEvent", "TraceRecorder"]


class TaskCategory(str, Enum):
    """Task-class colour categories, matching the paper's trace legend."""

    GEMM = "gemm"          # red in the paper's traces
    READ_A = "read_a"      # blue
    READ_B = "read_b"      # purple
    REDUCE = "reduce"      # yellow
    SORT = "sort"
    WRITE = "write"        # light green
    DFILL = "dfill"
    COMM = "comm"          # communication (GET_HASH_BLOCK etc.)
    STEAL = "steal"        # work-stealing protocol events
    NXTVAL = "nxtval"
    BARRIER = "barrier"
    OTHER = "other"

    @property
    def is_communication(self) -> bool:
        """True for categories that represent data movement, not compute."""
        return self in (TaskCategory.COMM, TaskCategory.READ_A, TaskCategory.READ_B)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One closed span on one simulated thread.

    ``slots=True``: traced runs record one of these per task/comm span,
    so the per-instance ``__dict__`` is worth eliminating.
    """

    node: int
    thread: int
    category: TaskCategory
    label: str
    t_start: float
    t_end: float
    meta: Optional[dict] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        d = {
            "node": self.node,
            "thread": self.thread,
            "category": self.category.value,
            "label": self.label,
            "t_start": self.t_start,
            "t_end": self.t_end,
        }
        if self.meta:
            d["meta"] = self.meta
        return d


class TraceRecorder:
    """Collects spans; offers filtered views and serialization.

    Recording can be disabled wholesale (``enabled=False``) for the big
    performance sweeps where only end-to-end time matters.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(
        self,
        node: int,
        thread: int,
        category: TaskCategory,
        label: str,
        t_start: float,
        t_end: float,
        meta: Optional[dict] = None,
    ) -> None:
        """Record one closed span (no-op when disabled)."""
        if not self.enabled:
            return
        if t_end < t_start:
            raise ValueError(f"span ends before it starts: {label} {t_start}..{t_end}")
        self.events.append(
            TraceEvent(node, thread, category, label, t_start, t_end, meta)
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def filtered(
        self,
        category: Optional[TaskCategory] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> list[TraceEvent]:
        """Events matching all the given criteria."""
        out = self.events
        if category is not None:
            out = [e for e in out if e.category == category]
        if node is not None:
            out = [e for e in out if e.node == node]
        if predicate is not None:
            out = [e for e in out if predicate(e)]
        return list(out)

    def threads(self) -> list[tuple[int, int]]:
        """Sorted list of distinct (node, thread) rows."""
        return sorted({(e.node, e.thread) for e in self.events})

    def by_thread(self) -> dict[tuple[int, int], list[TraceEvent]]:
        """Events grouped per (node, thread), each group time-sorted."""
        groups: dict[tuple[int, int], list[TraceEvent]] = {}
        for event in self.events:
            groups.setdefault((event.node, event.thread), []).append(event)
        for spans in groups.values():
            spans.sort(key=lambda e: (e.t_start, e.t_end))
        return groups

    def makespan(self) -> float:
        """Latest span end minus earliest span start (0 for empty traces)."""
        if not self.events:
            return 0.0
        start = min(e.t_start for e in self.events)
        end = max(e.t_end for e in self.events)
        return end - start

    def total_time_by_category(self) -> dict[TaskCategory, float]:
        """Sum of span durations per category."""
        totals: dict[TaskCategory, float] = {}
        for event in self.events:
            totals[event.category] = totals.get(event.category, 0.0) + event.duration
        return totals

    def count_by_category(self) -> dict[TaskCategory, int]:
        """Number of spans per category."""
        counts: dict[TaskCategory, int] = {}
        for event in self.events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize every span as a JSON array of objects."""
        return json.dumps([e.to_dict() for e in self.events], indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TraceRecorder":
        """Inverse of :meth:`to_json`."""
        recorder = cls()
        for d in json.loads(text):
            recorder.record(
                d["node"],
                d["thread"],
                TaskCategory(d["category"]),
                d["label"],
                d["t_start"],
                d["t_end"],
                d.get("meta"),
            )
        return recorder
