"""Cluster assembly: the simulated stand-in for the Cascade partition.

:class:`ClusterConfig` captures everything a run needs — node count,
cores per node, the machine constants, whether real NumPy data flows
through the system (``DataMode.REAL``) or only shapes and costs
(``DataMode.SYNTH``), and whether tracing is on. :class:`Cluster` wires
up the engine, trace recorder, network, and nodes.

The paper's experiments use 32 nodes with 1..15 compute cores per node;
PaRSEC additionally runs its communication thread "on a dedicated core",
which is how the runtimes here model it too (the comm thread does not
occupy one of ``cores_per_node``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional

from repro.obs.registry import MetricsRegistry
from repro.sim.cost import MachineModel
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.trace import TraceRecorder
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.faults import FaultInjector

__all__ = ["DataMode", "ClusterConfig", "Cluster"]


class DataMode(str, Enum):
    """Whether task bodies move real NumPy data or only virtual costs."""

    REAL = "real"    # numerics verified end to end (tests, equivalence bench)
    SYNTH = "synth"  # shape/cost only (large performance sweeps)


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of one simulated machine allocation."""

    n_nodes: int = 32
    cores_per_node: int = 7
    machine: MachineModel = field(default_factory=MachineModel)
    data_mode: DataMode = DataMode.REAL
    trace_enabled: bool = True
    #: whether the cluster's MetricsRegistry records anything; off for
    #: the big performance sweeps (emitting is pure bookkeeping, so
    #: virtual timings are bitwise identical either way)
    metrics_enabled: bool = True
    #: accelerators per node; device-capable tasks (GEMMs) are
    #: dispatched to GPU workers when > 0
    gpus_per_node: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.cores_per_node < 1:
            raise ConfigurationError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.gpus_per_node < 0:
            raise ConfigurationError(
                f"gpus_per_node must be >= 0, got {self.gpus_per_node}"
            )

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    def with_cores(self, cores_per_node: int) -> "ClusterConfig":
        """Same allocation with a different core count (Fig. 9 sweeps)."""
        return ClusterConfig(
            n_nodes=self.n_nodes,
            cores_per_node=cores_per_node,
            machine=self.machine,
            data_mode=self.data_mode,
            trace_enabled=self.trace_enabled,
            metrics_enabled=self.metrics_enabled,
            gpus_per_node=self.gpus_per_node,
        )


class Cluster:
    """A live simulated machine: engine + trace + network + nodes."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.engine = Engine()
        self.trace = TraceRecorder(enabled=config.trace_enabled)
        self.metrics = MetricsRegistry(
            enabled=config.metrics_enabled, clock=lambda: self.engine.now
        )
        self.network = Network(self.engine, config.machine, metrics=self.metrics)
        self.nodes: list[Node] = []
        #: the FaultInjector, once install_faults() has been called
        self.faults: Optional["FaultInjector"] = None
        for node_id in range(config.n_nodes):
            node = Node(
                self.engine, node_id, config.machine, config.cores_per_node, self.trace
            )
            self.network.register(node)
            self.nodes.append(node)

    def install_faults(self, plan):
        """Arm a :class:`~repro.sim.faults.FaultPlan` on this cluster.

        Returns the :class:`~repro.sim.faults.FaultInjector`, whose
        ``report`` accumulates fault and recovery counters. Must be
        called before the runtimes that should observe the faults are
        launched, and at most once per cluster.
        """
        from repro.sim.faults import FaultInjector

        if self.faults is not None:
            raise ConfigurationError("install_faults() called twice on one cluster")
        injector = FaultInjector(self, plan)
        injector.install()
        self.faults = injector
        self.network.faults = injector
        return injector

    @property
    def machine(self) -> MachineModel:
        return self.config.machine

    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    @property
    def cores_per_node(self) -> int:
        return self.config.cores_per_node

    @property
    def data_mode(self) -> DataMode:
        return self.config.data_mode

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.engine.now

    def run(self, until: float | None = None) -> float:
        """Drain the event heap; returns the final virtual time."""
        return self.engine.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(nodes={self.n_nodes}, cores/node={self.cores_per_node}, "
            f"mode={self.data_mode.value})"
        )
