"""Calibrated operation cost models.

The DES charges every simulated operation a virtual duration derived
from a :class:`MachineModel`. The default constants approximate one node
of the PNNL Cascade cluster the paper used (dual-socket Intel Xeon
E5-2670, FDR InfiniBand): effective per-core DGEMM rate for small tiles,
effective per-node memory bandwidth, NIC bandwidth and wire latency, and
software overheads for Global Arrays requests, NXTVAL, mutexes, and
per-task runtime bookkeeping.

Absolute values matter far less than *ratios* here — the Figure 9 shape
(where the original code saturates, who wins at 15 cores/node) is driven
by compute:memory:network:atomic-op ratios, not by any single constant.
The provenance of each default is noted inline; the sweep benchmarks
vary several of them to show the conclusions are not knife-edge.

Costs come in two parts per operation, mirroring how they are charged:

- ``cpu``  — seconds of exclusive core time (``yield engine.timeout``),
- ``bytes`` — memory traffic pushed through the node's shared
  processor-sharing bandwidth resource.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_non_negative, check_positive

__all__ = ["MachineModel", "OpCost"]

_GIGA = 1.0e9


@dataclass(frozen=True)
class OpCost:
    """Cost of one simulated operation: core seconds + memory bytes."""

    cpu: float
    bytes: float

    def __post_init__(self) -> None:
        check_non_negative("OpCost.cpu", self.cpu)
        check_non_negative("OpCost.bytes", self.bytes)

    def scaled(self, factor: float) -> "OpCost":
        """Both components multiplied by ``factor``."""
        return OpCost(self.cpu * factor, self.bytes * factor)

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(self.cpu + other.cpu, self.bytes + other.bytes)


@dataclass(frozen=True)
class MachineModel:
    """Constants describing one node class plus its interconnect."""

    # -- compute -------------------------------------------------------
    #: Effective per-core DGEMM rate for the tile sizes CCSD produces
    #: (tens of rows/cols). E5-2670 peak is ~20.8 GF/s/core; small-tile
    #: DGEMM lands well below peak.
    gemm_gflops: float = 20.0
    #: Element-shuffle rate of SORT_4 (index arithmetic), elements/s.
    sort_elems_per_s: float = 6.0e8
    #: Element rate of the CPU side of an accumulate (C += X).
    axpy_elems_per_s: float = 1.2e9

    # -- memory --------------------------------------------------------
    #: Effective per-node memory bandwidth shared by all cores, bytes/s.
    #: Dual-socket DDR3-1600 streams ~60-80 GB/s; effective copy/shuffle
    #: traffic lands lower.
    mem_bw_bytes_per_s: float = 5.0e10
    #: Copy bandwidth a single core can sustain on its own (one thread
    #: cannot drive the whole memory controller), bytes/s.
    core_copy_bytes_per_s: float = 4.0e9
    #: Fraction of a task's memory traffic assumed cache-resident when
    #: the same thread touched the data immediately before (the fused
    #: SORT of variant v5 re-reads its own output).
    cache_reuse_discount: float = 0.55

    # -- network -------------------------------------------------------
    #: Effective NIC bandwidth for large contiguous transfers (FDR
    #: InfiniBand is ~6.8 GB/s raw; sustained end-to-end rates for a
    #: runtime pumping tens-of-MB messages land near 2 GB/s).
    nic_bw_bytes_per_s: float = 2.0e9
    #: One-way wire + driver latency per message, seconds.
    net_latency_s: float = 2.5e-6

    # -- software overheads --------------------------------------------
    #: Target-side service time of one Global Arrays get/acc request
    #: (progress engine wakeup, registration lookup).
    ga_request_overhead_s: float = 4.0e-6
    #: Effective serving rate of the one-sided GA get/accumulate path at
    #: the owner node, bytes/s. This is what Figure 13 measures
    #: implicitly: GET_HASH_BLOCK spans comparable to GEMM spans for
    #: tens-of-MB tiles mean an effective one-sided rate far below NIC
    #: line rate (ARMCI progress without a dedicated core, pipelined
    #: chunking, per-chunk handshakes). PaRSEC transfers do NOT take
    #: this path — its reads are local to the owner and its comm thread
    #: streams large contiguous buffers at NIC rate — which is precisely
    #: the structural advantage the paper exploits.
    ga_service_bytes_per_s: float = 8.0e8
    #: Effective rate of a *local* Global Arrays get — what a PaRSEC
    #: READ task pays on the owner node to pull a tile out of the GA
    #: into PaRSEC-managed memory (ARMCI bookkeeping + copy), bytes/s
    #: of exclusive core time. Faster than the remote one-sided path
    #: but far from raw memcpy.
    ga_local_bytes_per_s: float = 1.5e9
    #: Service time of one NXTVAL read-modify-write at the counter's
    #: home node. The single server at one home node is the scaling
    #: bottleneck the paper calls out for the original code.
    nxtval_service_s: float = 1.5e-6
    #: Caller-side cost of issuing one NXTVAL (library + net stack).
    nxtval_issue_s: float = 2.0e-6
    #: pthread mutex lock / unlock overhead ("system wide operations").
    mutex_lock_s: float = 4.0e-7
    mutex_unlock_s: float = 3.0e-7
    #: PaRSEC per-task scheduling overhead (select + bookkeeping).
    task_overhead_s: float = 2.0e-6
    #: PaRSEC communication-thread service time per message (posting
    #: the send / matching the receive).
    comm_thread_overhead_s: float = 3.0e-6
    #: Per-byte handling rate of the communication thread (staging data
    #: in and out of PaRSEC-managed buffers). One comm thread per node
    #: serves both directions serially, so this is a real per-node
    #: ceiling on sustainable message throughput — a first-order reason
    #: task runtimes stop scaling with many cores per node.
    comm_pack_bytes_per_s: float = 2.2e9
    #: Legacy per-GEMM bookkeeping (MA_PUSH_GET/MA_POP_STACK, hashing).
    legacy_call_overhead_s: float = 3.0e-6
    #: Cost of one barrier crossing per rank (GA sync).
    barrier_overhead_s: float = 2.0e-5

    # -- accelerators ----------------------------------------------------
    #: DGEMM rate of one accelerator (device-resident data), flops/s.
    gpu_gemm_gflops: float = 300.0
    #: Host<->device staging bandwidth, shared per node (PCIe).
    pcie_bytes_per_s: float = 1.0e10
    #: Kernel-launch + runtime cost per device task.
    gpu_task_overhead_s: float = 1.0e-5

    # -- element size ----------------------------------------------------
    word_bytes: int = 8  # float64 everywhere, as in NWChem CC

    def __post_init__(self) -> None:
        check_positive("gemm_gflops", self.gemm_gflops)
        check_positive("sort_elems_per_s", self.sort_elems_per_s)
        check_positive("axpy_elems_per_s", self.axpy_elems_per_s)
        check_positive("mem_bw_bytes_per_s", self.mem_bw_bytes_per_s)
        check_positive("nic_bw_bytes_per_s", self.nic_bw_bytes_per_s)
        check_non_negative("net_latency_s", self.net_latency_s)
        if not (0.0 <= self.cache_reuse_discount <= 1.0):
            raise ValueError(
                f"cache_reuse_discount must be in [0,1], got {self.cache_reuse_discount}"
            )

    # ------------------------------------------------------------------
    # kernel costs
    # ------------------------------------------------------------------
    def gemm(self, m: int, n: int, k: int, device: str = "cpu") -> OpCost:
        """DGEMM C(m,n) += A(m,k)·B(k,n).

        On the CPU: flops on the core plus operand traffic through the
        node's shared memory. On a device: flops at the accelerator
        rate with no host-memory traffic (host<->device staging is
        charged separately by the GPU worker through the PCIe
        resource).
        """
        flops = 2.0 * m * n * k
        if device == "gpu":
            return OpCost(flops / (self.gpu_gemm_gflops * _GIGA), 0.0)
        cpu = flops / (self.gemm_gflops * _GIGA)
        # read A, read B, read + write C
        traffic = self.word_bytes * (m * k + k * n + 2 * m * n)
        return OpCost(cpu, float(traffic))

    def sort4(self, elements: int, cache_warm: bool = False) -> OpCost:
        """SORT_4 permutation of ``elements`` values (memory bound).

        A cache-warm pass (the same thread just touched the data, as in
        the fused SORT of variant v5) is discounted on both components:
        the shuffle's CPU time is dominated by memory stalls.
        """
        cpu = elements / self.sort_elems_per_s
        traffic = self.word_bytes * 2.0 * elements  # read src, write dst
        if cache_warm:
            cpu *= 1.0 - self.cache_reuse_discount
            traffic *= 1.0 - self.cache_reuse_discount
        return OpCost(cpu, traffic)

    def axpy(self, elements: int, cache_warm: bool = False) -> OpCost:
        """Accumulate C += X over ``elements`` values."""
        cpu = elements / self.axpy_elems_per_s
        traffic = self.word_bytes * 3.0 * elements  # read C, read X, write C
        if cache_warm:
            cpu *= 1.0 - self.cache_reuse_discount
            traffic *= 1.0 - self.cache_reuse_discount
        return OpCost(cpu, traffic)

    def memcpy(self, elements: int) -> OpCost:
        """Plain copy of ``elements`` values."""
        return OpCost(0.0, self.word_bytes * 2.0 * elements)

    def zero_fill(self, elements: int) -> OpCost:
        """DFILL: zero-initialize ``elements`` values (write-only traffic)."""
        return OpCost(0.0, self.word_bytes * 1.0 * elements)

    # ------------------------------------------------------------------
    # network helpers
    # ------------------------------------------------------------------
    def wire_time(self, size_bytes: float) -> float:
        """Serialization time of ``size_bytes`` through one NIC."""
        return size_bytes / self.nic_bw_bytes_per_s

    def with_overrides(self, **kwargs) -> "MachineModel":
        """A copy with some constants replaced (for ablation sweeps)."""
        return replace(self, **kwargs)
