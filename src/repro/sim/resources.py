"""Contended resources for the simulated machine.

Two service disciplines cover everything the reproduction needs:

- :class:`Resource` — a counted semaphore with FIFO waiters. Used for
  NIC serialization, GA request handlers, and (via
  :class:`~repro.sim.mutex.SimMutex`) pthread mutexes.
- :class:`BandwidthResource` — a fluid processor-sharing server. All
  active jobs share the capacity equally, which is the standard model
  for per-node memory bandwidth shared among cores. This is what makes
  the original NWChem code's scaling taper off around seven cores per
  node in the Figure 9 reproduction: SORT and accumulate traffic from
  many ranks divides a fixed byte rate.

Both hot paths run on the engine's :class:`~repro.sim.timeline.BatchedTimeline`:
capacity-1 resource holds arm a reusable PERSISTENT channel instead of
allocating a ``Timeout``, and bandwidth rescheduling re-arms a DIRECT
channel instead of cancelling and re-pushing a ``ScheduledCall`` per
transfer arrival. Sequence numbers are consumed at exactly the points
the legacy objects consumed them, so virtual timings are bitwise
unchanged (see DESIGN.md §6).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.sim.engine import Engine, SimEvent
from repro.sim.timeline import KIND_BANDWIDTH, KIND_RESOURCE, TimelineTimer
from repro.util.errors import SimulationError
from repro.util.validation import check_positive

__all__ = ["Resource", "BandwidthResource"]

#: job count at which BandwidthResource switches its per-tick charge
#: from a list comprehension to a numpy bulk subtract (elementwise
#: float64 ops are bitwise-identical either way)
_BULK_JOBS = 32


class Resource:
    """Counted semaphore with FIFO waiting.

    ``acquire()`` returns a :class:`SimEvent` to ``yield`` on; pair every
    successful acquire with exactly one ``release()``.

    A waiter whose process died (fault-killed worker, drained scheduler)
    is *abandoned* — :meth:`release` skips it instead of granting a slot
    to a corpse, mirroring what ``Store.put`` does for dead getters.
    """

    __slots__ = (
        "engine",
        "capacity",
        "name",
        "_in_use",
        "_waiters",
        "_hold_timer",
        "total_acquisitions",
        "total_wait_time",
    )

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[tuple[SimEvent, float]] = deque()
        # lazily-opened timeline channel for capacity-1 hold durations
        # (at most one holder, hence at most one outstanding timeout)
        self._hold_timer: Optional[TimelineTimer] = None
        # statistics
        self.total_acquisitions = 0
        self.total_wait_time = 0.0

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> SimEvent:
        """Request a slot; the returned event fires when it is granted."""
        event = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_acquisitions += 1
            event.succeed()
        else:
            self._waiters.append((event, self.engine.now))
        return event

    def release(self) -> None:
        """Return a slot, waking the oldest *live* waiter if any.

        Abandoned or already-triggered waiter events are skipped — a
        grant delivered to a fault-killed process would leak the slot
        and deadlock the channel (the NIC, under chaos).
        """
        if self._in_use <= 0:
            raise SimulationError(f"release() of un-acquired resource {self.name!r}")
        waiters = self._waiters
        while waiters:
            waiter, enqueued_at = waiters.popleft()
            if waiter.abandoned or waiter.triggered:
                continue
            self.total_acquisitions += 1
            self.total_wait_time += self.engine.now - enqueued_at
            waiter.succeed()
            return
        self._in_use -= 1

    def abandon_waiters(self) -> int:
        """Mark every pending waiter dead; returns how many were live.

        For drain paths (``NodeScheduler.drain``): processes parked on
        this resource will never resume, so their grants must never
        fire.
        """
        live = 0
        for waiter, _ in self._waiters:
            if not waiter.abandoned and not waiter.triggered:
                waiter.abandon()
                live += 1
        self._waiters.clear()
        return live

    def use(self, duration: float):
        """Generator helper: hold one slot for ``duration`` virtual seconds.

        Use as ``yield from resource.use(dt)`` inside a process. The
        grant path is crash-safe: if the enclosing process is killed
        while parked on the grant — or between the grant firing and the
        body resuming — the slot is released (or the pending grant
        abandoned) instead of leaking.
        """
        engine = self.engine
        if self._in_use < self.capacity:
            # Uncontended fast path: take the slot now, synchronously —
            # no SimEvent, no lane hop. The grant instant is the same
            # either way; only the same-instant interleaving differs,
            # and the golden digests pin that it is not observable.
            self._in_use += 1
            self.total_acquisitions += 1
            held = True
            grant = None
        else:
            grant = engine.event()
            self._waiters.append((grant, engine.now))
            held = False
        try:
            if grant is not None:
                yield grant
                held = True
            if self.capacity == 1:
                timer = self._hold_timer
                if timer is None:
                    timer = self._hold_timer = engine.timeline.timer(KIND_RESOURCE)
                yield timer.after(duration)
            else:
                yield engine.timeout(duration)
        finally:
            if held or (grant is not None and grant.triggered):
                self.release()
            elif grant is not None:
                grant.abandon()


class BandwidthResource:
    """Fluid processor-sharing server.

    ``transfer(amount)`` injects a job of ``amount`` work units (e.g.
    bytes); all active jobs receive ``capacity / n_jobs`` units per
    second. The returned event fires when the job's work is done. This
    gives exact egalitarian sharing, the usual first-order model for a
    memory controller shared by symmetric cores.

    Jobs live in struct-of-arrays columns (remaining, original size,
    completion event) so the per-arrival charge is one bulk subtract,
    and the single wakeup rides a DIRECT timeline channel: every
    arrival re-arms the channel instead of cancelling and re-pushing a
    ``ScheduledCall``.
    """

    _EPS = 1e-12

    __slots__ = (
        "engine",
        "capacity",
        "per_job_cap",
        "name",
        "_rem",
        "_size",
        "_events",
        "_last_update",
        "_wake_slot",
        "total_work",
        "busy_time",
    )

    def __init__(
        self,
        engine: Engine,
        capacity: float,
        name: str = "",
        per_job_cap: Optional[float] = None,
    ) -> None:
        check_positive("BandwidthResource capacity", capacity)
        if per_job_cap is not None:
            check_positive("BandwidthResource per_job_cap", per_job_cap)
        self.engine = engine
        self.capacity = capacity
        self.per_job_cap = per_job_cap
        self.name = name
        # struct-of-arrays job columns
        self._rem: list[float] = []
        self._size: list[float] = []
        self._events: list[SimEvent] = []
        self._last_update = engine.now
        self._wake_slot = engine.timeline.open(
            KIND_BANDWIDTH, callback=self._on_wakeup
        )
        # statistics
        self.total_work = 0.0
        self.busy_time = 0.0

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently being served."""
        return len(self._rem)

    def transfer(self, amount: float) -> SimEvent:
        """Inject ``amount`` work units; event fires at completion.

        Zero-size transfers complete immediately (still via the heap).
        """
        if amount < 0:
            raise SimulationError(f"negative transfer amount {amount}")
        event = self.engine.event()
        if amount == 0:
            event.succeed()
            return event
        self._advance()
        self._rem.append(amount)
        self._size.append(amount)
        self._events.append(event)
        self.total_work += amount
        self._reschedule()
        return event

    # ------------------------------------------------------------------
    def _rate(self) -> float:
        """Per-job service rate: equal share, optionally capped.

        The cap models a single core's copy bandwidth — one thread
        cannot saturate the whole memory controller, so a lone job gets
        ``per_job_cap`` while many concurrent jobs share ``capacity``.
        """
        share = self.capacity / len(self._rem)
        if self.per_job_cap is not None:
            return min(share, self.per_job_cap)
        return share

    def _advance(self) -> None:
        """Charge elapsed time against every active job."""
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._rem:
            return
        self.busy_time += dt
        rem = self._rem
        # inlined _rate() — this runs once per transfer arrival
        share = self.capacity / len(rem)
        cap = self.per_job_cap
        if cap is not None and cap < share:
            share = cap
        served = dt * share
        if len(rem) >= _BULK_JOBS:
            # elementwise float64 subtract matches the scalar loop bit
            # for bit; tolist() restores plain Python floats before the
            # values can reach the virtual clock
            self._rem = np.subtract(rem, served).tolist()
        else:
            self._rem = [r - served for r in rem]

    def _reschedule(self) -> None:
        timeline = self.engine.timeline
        rem = self._rem
        if not rem:
            timeline.disarm(self._wake_slot)
            return
        share = self.capacity / len(rem)  # inlined _rate()
        cap = self.per_job_cap
        if cap is not None and cap < share:
            share = cap
        delay = max(0.0, min(rem) / share)
        timeline.rearm(self._wake_slot, delay)

    def _on_wakeup(self) -> None:
        self._advance()
        if not self._rem:
            return
        rate = self.capacity / len(self._rem)  # inlined _rate()
        cap = self.per_job_cap
        if cap is not None and cap < rate:
            rate = cap
        now = self.engine.now
        rem = self._rem
        size = self._size
        events = self._events
        eps = self._EPS
        finished: list[SimEvent] = []
        keep_r: list[float] = []
        keep_s: list[float] = []
        keep_e: list[SimEvent] = []
        for i, r in enumerate(rem):
            if (
                r <= eps * size[i]
                # residual so small its completion delay underflows the
                # float clock (now + delay == now): finishing it now is
                # the only way time can advance
                or now + r / rate == now
            ):
                finished.append(events[i])
            else:
                keep_r.append(r)
                keep_s.append(size[i])
                keep_e.append(events[i])
        if not finished:
            # Numerical drift; just reschedule for the residual.
            self._reschedule()
            return
        self._rem = keep_r
        self._size = keep_s
        self._events = keep_e
        for event in finished:
            event.succeed()
        self._reschedule()

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time with at least one active job up to now."""
        self._advance()
        total = horizon if horizon is not None else self.engine.now
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_time / total)
