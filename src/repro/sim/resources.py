"""Contended resources for the simulated machine.

Two service disciplines cover everything the reproduction needs:

- :class:`Resource` — a counted semaphore with FIFO waiters. Used for
  NIC serialization, GA request handlers, and (via
  :class:`~repro.sim.mutex.SimMutex`) pthread mutexes.
- :class:`BandwidthResource` — a fluid processor-sharing server. All
  active jobs share the capacity equally, which is the standard model
  for per-node memory bandwidth shared among cores. This is what makes
  the original NWChem code's scaling taper off around seven cores per
  node in the Figure 9 reproduction: SORT and accumulate traffic from
  many ranks divides a fixed byte rate.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Optional

from repro.sim.engine import Engine, SimEvent, ScheduledCall
from repro.util.errors import SimulationError
from repro.util.validation import check_positive

__all__ = ["Resource", "BandwidthResource"]


class Resource:
    """Counted semaphore with FIFO waiting.

    ``acquire()`` returns a :class:`SimEvent` to ``yield`` on; pair every
    successful acquire with exactly one ``release()``.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[tuple[SimEvent, float]] = deque()
        # statistics
        self.total_acquisitions = 0
        self.total_wait_time = 0.0

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> SimEvent:
        """Request a slot; the returned event fires when it is granted."""
        event = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_acquisitions += 1
            event.succeed()
        else:
            self._waiters.append((event, self.engine.now))
        return event

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of un-acquired resource {self.name!r}")
        if self._waiters:
            waiter, enqueued_at = self._waiters.popleft()
            self.total_acquisitions += 1
            self.total_wait_time += self.engine.now - enqueued_at
            waiter.succeed()
        else:
            self._in_use -= 1

    def use(self, duration: float):
        """Generator helper: hold one slot for ``duration`` virtual seconds.

        Use as ``yield from resource.use(dt)`` inside a process.
        """
        yield self.acquire()
        try:
            yield self.engine.timeout(duration)
        finally:
            self.release()


class _PSJob:
    __slots__ = ("remaining", "event", "start_time", "size")

    def __init__(self, remaining: float, event: SimEvent, start_time: float) -> None:
        self.remaining = remaining
        self.size = remaining
        self.event = event
        self.start_time = start_time


class BandwidthResource:
    """Fluid processor-sharing server.

    ``transfer(amount)`` injects a job of ``amount`` work units (e.g.
    bytes); all active jobs receive ``capacity / n_jobs`` units per
    second. The returned event fires when the job's work is done. This
    gives exact egalitarian sharing, the usual first-order model for a
    memory controller shared by symmetric cores.
    """

    _EPS = 1e-12

    def __init__(
        self,
        engine: Engine,
        capacity: float,
        name: str = "",
        per_job_cap: Optional[float] = None,
    ) -> None:
        check_positive("BandwidthResource capacity", capacity)
        if per_job_cap is not None:
            check_positive("BandwidthResource per_job_cap", per_job_cap)
        self.engine = engine
        self.capacity = capacity
        self.per_job_cap = per_job_cap
        self.name = name
        self._jobs: list[_PSJob] = []
        self._last_update = engine.now
        self._wakeup: Optional[ScheduledCall] = None
        self._seq = itertools.count()
        # statistics
        self.total_work = 0.0
        self.busy_time = 0.0

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently being served."""
        return len(self._jobs)

    def transfer(self, amount: float) -> SimEvent:
        """Inject ``amount`` work units; event fires at completion.

        Zero-size transfers complete immediately (still via the heap).
        """
        if amount < 0:
            raise SimulationError(f"negative transfer amount {amount}")
        event = self.engine.event()
        if amount == 0:
            event.succeed()
            return event
        self._advance()
        self._jobs.append(_PSJob(amount, event, self.engine.now))
        self.total_work += amount
        self._reschedule()
        return event

    # ------------------------------------------------------------------
    def _rate(self) -> float:
        """Per-job service rate: equal share, optionally capped.

        The cap models a single core's copy bandwidth — one thread
        cannot saturate the whole memory controller, so a lone job gets
        ``per_job_cap`` while many concurrent jobs share ``capacity``.
        """
        share = self.capacity / len(self._jobs)
        if self.per_job_cap is not None:
            return min(share, self.per_job_cap)
        return share

    def _advance(self) -> None:
        """Charge elapsed time against every active job."""
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._jobs:
            return
        self.busy_time += dt
        served = dt * self._rate()
        for job in self._jobs:
            job.remaining -= served

    def _reschedule(self) -> None:
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None
        if not self._jobs:
            return
        min_remaining = min(job.remaining for job in self._jobs)
        delay = max(0.0, min_remaining / self._rate())
        self._wakeup = self.engine.schedule(delay, self._on_wakeup)

    def _on_wakeup(self) -> None:
        self._wakeup = None
        self._advance()
        if not self._jobs:
            return
        rate = self._rate()
        now = self.engine.now
        finished = [
            j
            for j in self._jobs
            if j.remaining <= self._EPS * j.size
            # residual so small its completion delay underflows the
            # float clock (now + delay == now): finishing it now is the
            # only way time can advance
            or now + j.remaining / rate == now
        ]
        if not finished:
            # Numerical drift; just reschedule for the residual.
            self._reschedule()
            return
        done = set(map(id, finished))
        self._jobs = [j for j in self._jobs if id(j) not in done]
        for job in finished:
            job.event.succeed()
        self._reschedule()

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time with at least one active job up to now."""
        self._advance()
        total = horizon if horizon is not None else self.engine.now
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_time / total)
