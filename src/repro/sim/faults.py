"""Deterministic fault injection: the plan, the injector, the report.

The runtimes in this package are deterministic discrete-event programs,
and the fault model keeps them that way: every injected fault is a pure
function of a *master seed* and a stable decision key, never of wall
clock or of the order in which components happen to ask. Two runs with
the same :class:`FaultPlan` therefore see the same task failures, the
same message fates, the same straggler windows, and the same crash
times — so recovery paths can be regression-tested bit for bit.

Fault classes
-------------
- **Transient task failures** — a task body attempt fails before doing
  any work (decided per ``(label, attempt)``); the scheduler pays a
  detection latency and retries, up to ``max_task_retries`` times.
- **Message faults** — each NIC-crossing transmission attempt is
  assigned a fate (``drop``/``delay``/``dup``/``ok``) per
  ``(tag, seq, attempt)``. Drops are recovered by ack-timeout
  retransmission with exponential backoff; duplicates are discarded at
  the receiver by sequence number (exactly-once delivery holds).
- **Stragglers** — a node's CPU costs are scaled by a factor inside a
  virtual-time window.
- **Node crashes** — at a planned time a node's *compute* halts
  permanently. The model is compute-fail-stop: the node's memory, NIC,
  communication thread, and Global Arrays handler survive (RDMA-style),
  so in-flight protocol traffic still completes; only task execution
  stops, and the runtimes re-home that work onto survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.util.backoff import capped_exponential
from repro.util.errors import ConfigurationError, TaskKilled
from repro.util.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.cluster import Cluster
    from repro.sim.network import Message

__all__ = [
    "Straggler",
    "NodeCrash",
    "FaultPlan",
    "FaultReport",
    "FaultInjector",
    "killable",
]


@dataclass(frozen=True)
class Straggler:
    """One slow-node episode: CPU costs on ``node`` are multiplied by
    ``factor`` while the virtual clock is in ``[t_start, t_end)``."""

    node: int
    t_start: float
    t_end: float
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigurationError(f"straggler factor must be >= 1, got {self.factor}")
        if self.t_end < self.t_start:
            raise ConfigurationError("straggler window ends before it starts")


@dataclass(frozen=True)
class NodeCrash:
    """Permanent compute failure of ``node`` at virtual time ``at``."""

    node: int
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class FaultPlan:
    """A seed-driven schedule of faults for one simulated run.

    Probabilistic decisions (task failures, message fates) are keyed:
    ``decision = f(master_seed, key)`` where the key names the exact
    attempt being decided. This makes the plan *stateless* — components
    may query in any order without perturbing each other's faults.
    """

    master_seed: int = 0
    #: probability that one task-body attempt fails transiently
    task_fail_prob: float = 0.0
    #: failed attempts beyond this count succeed unconditionally
    max_task_retries: int = 3
    #: virtual time to detect one transient task failure
    task_fail_detect_s: float = 5.0e-6
    #: per-transmission-attempt probabilities of each message fate
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    dup_prob: float = 0.0
    #: extra in-flight latency of a delayed message
    msg_delay_s: float = 5.0e-6
    #: base ack timeout before the first retransmission
    retransmit_timeout_s: float = 2.0e-5
    #: ceiling on one retransmit backoff: ``backoff(attempt)`` never
    #: exceeds this, however high the attempt count climbs. The default
    #: (100x the base timeout) is above ``base * 2**(max_retransmits)``
    #: for the default plan, so capped and uncapped schedules coincide
    #: unless a plan raises ``max_retransmits`` past 6.
    max_backoff_s: float = 2.0e-3
    #: drops beyond this attempt count are suppressed (bounded recovery)
    max_retransmits: int = 6
    stragglers: tuple[Straggler, ...] = ()
    crashes: tuple[NodeCrash, ...] = ()

    def __post_init__(self) -> None:
        for name in ("task_fail_prob", "drop_prob", "delay_prob", "dup_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        if self.drop_prob + self.delay_prob + self.dup_prob > 1.0:
            raise ConfigurationError("message fate probabilities sum past 1")
        if self.max_backoff_s < self.retransmit_timeout_s:
            raise ConfigurationError(
                f"max_backoff_s ({self.max_backoff_s:g}) is below the base "
                f"retransmit timeout ({self.retransmit_timeout_s:g})"
            )

    # -- stateless seeded decisions --------------------------------------
    def _uniform(self, key: str) -> float:
        """Deterministic uniform [0, 1) draw for one decision key."""
        return derive_seed(self.master_seed, key) / float(2**63)

    def task_fails(self, label: str, attempt: int) -> bool:
        """Should attempt number ``attempt`` of task ``label`` fail?"""
        if attempt >= self.max_task_retries:
            return False
        return self._uniform(f"taskfail:{label}:{attempt}") < self.task_fail_prob

    def message_fate(self, tag: str, seq: int, attempt: int) -> str:
        """Fate of one transmission attempt: drop | delay | dup | ok."""
        u = self._uniform(f"msg:{tag}:{seq}:{attempt}")
        if u < self.drop_prob:
            return "drop" if attempt < self.max_retransmits else "ok"
        if u < self.drop_prob + self.delay_prob:
            return "delay"
        if u < self.drop_prob + self.delay_prob + self.dup_prob:
            return "dup"
        return "ok"

    def backoff(self, attempt: int) -> float:
        """Ack-timeout before retransmission ``attempt + 1``.

        Exponential in the attempt count but clamped to
        ``max_backoff_s`` — unbounded doubling would overflow a float
        past ~1024 attempts and, long before that, park a message for
        longer than the whole simulation horizon.
        """
        return capped_exponential(
            self.retransmit_timeout_s, attempt, self.max_backoff_s
        )

    def describe(self) -> str:
        parts = [
            f"seed={self.master_seed}",
            f"task_fail={self.task_fail_prob:g}",
            f"drop={self.drop_prob:g}",
            f"delay={self.delay_prob:g}",
            f"dup={self.dup_prob:g}",
        ]
        for s in self.stragglers:
            parts.append(
                f"straggler(node {s.node} x{s.factor:g} "
                f"@[{s.t_start:.3g},{s.t_end:.3g}))"
            )
        for c in self.crashes:
            parts.append(f"crash(node {c.node} @{c.at:.3g})")
        return " ".join(parts)


@dataclass
class FaultReport:
    """What the injector observed and what recovery it triggered."""

    task_retries: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    messages_duplicated: int = 0
    retransmits: int = 0
    #: started tasks aborted by a crash and re-executed elsewhere
    tasks_recomputed: int = 0
    #: tasks re-homed off a crashed node (superset of recomputed)
    tasks_reassigned: int = 0
    #: legacy: NXTVAL tickets returned to the pool by dying ranks
    tickets_reissued: int = 0
    #: legacy: chains executed by recovery workers on survivors
    chains_recovered: int = 0
    ranks_lost: int = 0
    nodes_crashed: int = 0
    #: virtual time burned on detection latencies, retransmit backoffs,
    #: and partial executions lost to aborts
    recovery_overhead_s: float = 0.0

    def snapshot(self) -> "FaultReport":
        """Copy of the current counters (for before/after diffing)."""
        return replace(self)

    def delta(self, earlier: "FaultReport") -> "FaultReport":
        """Counter-wise difference ``self - earlier``."""
        out = FaultReport()
        for f in fields(FaultReport):
            setattr(out, f.name, getattr(self, f.name) - getattr(earlier, f.name))
        return out

    def any_recovery(self) -> bool:
        """True if any fault was seen or any recovery action taken."""
        return any(getattr(self, f.name) for f in fields(FaultReport))

    def summary(self) -> str:
        active = [
            f"{f.name}={getattr(self, f.name):g}"
            for f in fields(FaultReport)
            if getattr(self, f.name)
        ]
        return " ".join(active) if active else "no faults"


class FaultInjector:
    """Binds a :class:`FaultPlan` to a live cluster.

    Created through :meth:`repro.sim.cluster.Cluster.install_faults`.
    Holds the run's :class:`FaultReport`, applies straggler windows to
    nodes, schedules crash events, and lets runtimes subscribe to crash
    notifications (delivered synchronously at the crash instant, after
    the node's ``alive`` flag flips).
    """

    def __init__(self, cluster: "Cluster", plan: FaultPlan) -> None:
        for s in plan.stragglers:
            if not 0 <= s.node < cluster.n_nodes:
                raise ConfigurationError(f"straggler names unknown node {s.node}")
        for c in plan.crashes:
            if not 0 <= c.node < cluster.n_nodes:
                raise ConfigurationError(f"crash names unknown node {c.node}")
        self.cluster = cluster
        self.plan = plan
        self.report = FaultReport()
        self._crash_callbacks: list[Callable] = []

    def install(self) -> None:
        """Arm the plan: straggler windows now, crashes via the heap."""
        engine = self.cluster.engine
        for s in self.plan.stragglers:
            self.cluster.nodes[s.node].slow_windows.append(
                (s.t_start, s.t_end, s.factor)
            )
        for c in self.plan.crashes:
            engine.schedule(max(0.0, c.at - engine.now), self._crash, c.node)

    def on_crash(self, callback: Callable) -> None:
        """Register ``callback(node)`` to run when any node crashes."""
        self._crash_callbacks.append(callback)

    def _crash(self, node_id: int) -> None:
        node = self.cluster.nodes[node_id]
        if not node.alive:
            return
        node.alive = False
        self.report.nodes_crashed += 1
        for callback in self._crash_callbacks:
            callback(node)

    # -- bookkeeping helpers used by the recovery paths ------------------
    def note_task_retry(self) -> None:
        self.report.task_retries += 1
        self.report.recovery_overhead_s += self.plan.task_fail_detect_s

    def note_abort(self, lost_time: float) -> None:
        self.report.tasks_recomputed += 1
        self.report.recovery_overhead_s += lost_time


def killable(gen: Generator, should_abort: Callable[[], bool]):
    """Drive a task-body generator, aborting it between steps.

    Generator helper (``completed = yield from killable(body, pred)``).
    After every resume of the enclosing process, ``should_abort()`` is
    consulted; if true, :class:`~repro.util.errors.TaskKilled` is thrown
    into the body so its ``finally`` blocks run — and any waitables those
    cleanup blocks yield (mutex unlocks pay an overhead) are still
    driven to completion. Returns ``True`` if the body finished
    normally, ``False`` if it was aborted. Ordinary exceptions raised by
    the body propagate unchanged, and failed waitables are thrown into
    the body exactly as :class:`~repro.sim.engine.Process` would.
    """
    killed = False
    pending_throw: Optional[BaseException] = None
    payload = None
    first = True
    while True:
        try:
            if pending_throw is not None:
                exc, pending_throw = pending_throw, None
                target = gen.throw(exc)
            elif first:
                target = gen.send(None)
            else:
                target = gen.send(payload)
        except StopIteration:
            return not killed
        except TaskKilled:
            return False
        first = False
        try:
            payload = yield target
        except BaseException as exc:  # failed waitable: forward to the body
            pending_throw = exc
            continue
        if not killed and should_abort():
            killed = True
            pending_throw = TaskKilled("node crashed under this task")
