"""A pthread-mutex model with explicit lock/unlock overhead.

Section V of the paper attributes part of v5's win over v3 to the
number of "system wide operations required to lock and unlock the mutex
that protects the critical region": v5 locks once per chain, v3 up to
four times. :class:`SimMutex` makes that cost explicit — every lock and
unlock burns a fixed overhead on the calling thread in addition to any
queueing delay, so the single-vs-parallel WRITE trade-off reproduces.
"""

from __future__ import annotations

from repro.sim.engine import Engine
from repro.sim.resources import Resource
from repro.util.validation import check_non_negative

__all__ = ["SimMutex"]


class SimMutex:
    """Mutual exclusion with per-operation overhead.

    Use from a process as::

        yield from mutex.lock()
        ...critical region...
        yield from mutex.unlock()

    or, holding for a known duration::

        yield from mutex.critical_section(duration)
    """

    def __init__(
        self,
        engine: Engine,
        lock_overhead: float = 0.0,
        unlock_overhead: float = 0.0,
        name: str = "",
    ) -> None:
        check_non_negative("lock_overhead", lock_overhead)
        check_non_negative("unlock_overhead", unlock_overhead)
        self.engine = engine
        self.name = name
        self.lock_overhead = lock_overhead
        self.unlock_overhead = unlock_overhead
        self._resource = Resource(engine, capacity=1, name=f"mutex:{name}")
        self.total_locks = 0

    @property
    def locked(self) -> bool:
        """True while some thread holds the mutex."""
        return self._resource.in_use > 0

    @property
    def waiters(self) -> int:
        """Number of threads blocked on the mutex."""
        return self._resource.queue_length

    @property
    def contended_wait_time(self) -> float:
        """Total virtual time threads spent blocked on this mutex."""
        return self._resource.total_wait_time

    def abandon_waiters(self) -> int:
        """Mark every thread parked on the mutex dead (crash cleanup).

        Returns how many live waiters were abandoned. Delegates to
        :meth:`repro.sim.resources.Resource.abandon_waiters`.
        """
        return self._resource.abandon_waiters()

    def lock(self):
        """Generator helper: pay the lock overhead, then wait for the mutex."""
        if self.lock_overhead > 0:
            yield self.engine.timeout(self.lock_overhead)
        yield self._resource.acquire()
        self.total_locks += 1

    def unlock(self):
        """Generator helper: pay the unlock overhead, then release."""
        if self.unlock_overhead > 0:
            yield self.engine.timeout(self.unlock_overhead)
        self._resource.release()

    def critical_section(self, duration: float):
        """Generator helper: lock, hold for ``duration``, unlock."""
        yield from self.lock()
        try:
            if duration > 0:
                yield self.engine.timeout(duration)
        finally:
            yield from self.unlock()
