"""Mailboxes and ready-queues for simulated threads.

:class:`Store` is an unbounded FIFO channel: producers never block,
consumers ``yield store.get()``. :class:`PriorityStore` hands out the
highest-priority item first (ties broken FIFO), matching PaRSEC's rule
that priorities "only have a relative meaning" — between two available
tasks the higher-priority one executes first.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any

from repro.sim.engine import Engine, SimEvent

__all__ = ["Store", "LifoStore", "PriorityStore"]


def _pop_live_getter(getters: deque[SimEvent]) -> SimEvent | None:
    """Pop the oldest getter that can still receive an item.

    A getter killed by fault injection (its process crashed while blocked
    on ``get()``) leaves an abandoned or already-triggered event behind in
    the queue; delivering to it would silently drop the item. Dead entries
    are discarded here, on the ``put()`` path, so the queue self-heals.
    """
    while getters:
        event = getters.popleft()
        if not event.abandoned and not event.triggered:
            return event
    return None


def _abandon_getters(getters: deque[SimEvent]) -> int:
    """Mark every pending getter abandoned; returns how many were live."""
    n = 0
    while getters:
        event = getters.popleft()
        if not event.abandoned and not event.triggered:
            event.abandon()
            n += 1
    return n


class Store:
    """Unbounded FIFO channel between simulated threads."""

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[SimEvent] = deque()
        self.total_puts = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest *live* waiting getter if any."""
        self.total_puts += 1
        getter = _pop_live_getter(self._getters) if self._getters else None
        if getter is not None:
            getter.succeed(item)
        else:
            self._items.append(item)

    def abandon_getters(self) -> int:
        """Invalidate all pending getters (crashed consumers); see module doc."""
        return _abandon_getters(self._getters)

    def get(self) -> SimEvent:
        """Event that fires with the next item (immediately if available)."""
        event = SimEvent(self.engine)  # direct: skips the event() frame
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class LifoStore:
    """Channel that yields the most recently deposited item first.

    The classic locality-oriented scheduling discipline: the newest
    ready task's data is the hottest in cache.
    """

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._items: list[Any] = []
        self._getters: deque[SimEvent] = deque()
        self.total_puts = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest *live* waiting getter if any."""
        self.total_puts += 1
        getter = _pop_live_getter(self._getters) if self._getters else None
        if getter is not None:
            getter.succeed(item)
        else:
            self._items.append(item)

    def abandon_getters(self) -> int:
        """Invalidate all pending getters (crashed consumers); see module doc."""
        return _abandon_getters(self._getters)

    def get(self) -> SimEvent:
        """Event that fires with the newest item (immediately if any)."""
        event = SimEvent(self.engine)  # direct: skips the event() frame
        if self._items:
            event.succeed(self._items.pop())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop of the newest item."""
        if self._items:
            return True, self._items.pop()
        return False, None


class PriorityStore:
    """Channel that yields the highest-priority item first.

    Larger priority value = more important (PaRSEC convention). Equal
    priorities are served in insertion order, so behaviour stays
    deterministic.
    """

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._heap: list[tuple[float, int, Any]] = []
        self._getters: deque[SimEvent] = deque()
        self._seq = itertools.count()
        self.total_puts = 0

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: Any, priority: float = 0.0) -> None:
        """Deposit ``item`` at ``priority``; may immediately wake a live getter."""
        self.total_puts += 1
        getter = _pop_live_getter(self._getters) if self._getters else None
        if getter is not None:
            getter.succeed(item)
        else:
            heapq.heappush(self._heap, (-priority, next(self._seq), item))

    def abandon_getters(self) -> int:
        """Invalidate all pending getters (crashed consumers); see module doc."""
        return _abandon_getters(self._getters)

    def get(self) -> SimEvent:
        """Event firing with the highest-priority available item."""
        event = SimEvent(self.engine)  # direct: skips the event() frame
        if self._heap:
            event.succeed(heapq.heappop(self._heap)[2])
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop of the best item: ``(True, item)`` or ``(False, None)``."""
        if self._heap:
            return True, heapq.heappop(self._heap)[2]
        return False, None

    def peek_priority(self) -> float:
        """Priority of the best queued item (error if empty)."""
        if not self._heap:
            raise IndexError(f"PriorityStore {self.name!r} is empty")
        return -self._heap[0][0]
