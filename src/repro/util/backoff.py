"""Capped exponential backoff, shared by the simulation and the host.

Two layers of this system retry with exponential backoff: the simulated
NIC retransmit path (:meth:`repro.sim.faults.FaultPlan.backoff`, virtual
seconds) and the host-level sweep/service retry machinery
(:class:`repro.experiments.sweep.RetryPolicy`, wall seconds). Both use
the same discipline — ``base * 2**attempt`` clamped to a ceiling — and
both must survive absurd attempt counts without overflowing: naive
``2.0 ** attempt`` raises ``OverflowError`` past attempt ~1024, which
would turn a retry storm into a crash of the retry machinery itself.
"""

from __future__ import annotations

__all__ = ["capped_exponential"]

#: ``2.0 ** e`` overflows IEEE 754 doubles at e >= 1024; past this we
#: know the uncapped delay would exceed any finite ceiling anyway.
_MAX_EXPONENT = 1023


def capped_exponential(base: float, attempt: int, cap: float) -> float:
    """``min(base * 2**attempt, cap)``, safe at any attempt count.

    ``attempt`` counts prior failures (the first retry waits ``base``).
    A non-positive ``base`` short-circuits to 0.0 (no delay discipline).
    """
    if base <= 0.0:
        return 0.0
    if attempt >= _MAX_EXPONENT:
        return cap
    return min(base * (2.0 ** max(attempt, 0)), cap)
