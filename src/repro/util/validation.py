"""Small argument-validation helpers used at public API boundaries.

These raise :class:`~repro.util.errors.ConfigurationError` with a
message naming the offending parameter, so misconfiguration surfaces at
construction time rather than as a confusing mid-simulation failure.
"""

from __future__ import annotations

from typing import Any

from repro.util.errors import ConfigurationError

__all__ = ["check_positive", "check_non_negative", "check_in_range", "check_type"]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Require ``low <= value <= high``; return it for chaining."""
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_type(name: str, value: Any, expected: type) -> Any:
    """Require ``isinstance(value, expected)``; return it for chaining."""
    if not isinstance(value, expected):
        raise ConfigurationError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
