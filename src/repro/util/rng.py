"""Deterministic random-number streams.

Every stochastic choice in the library draws from an :class:`RngStream`
derived from a user-provided master seed and a string *purpose* label.
Two runs with the same seed therefore see identical tile data, identical
noise, identical everything — which is what lets the test suite assert
exact equality between runtimes.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngStream"]


def derive_seed(master_seed: int, purpose: str) -> int:
    """Derive a child seed from ``master_seed`` and a purpose label.

    The derivation hashes the pair so distinct purposes yield
    statistically independent streams, and the mapping is stable across
    platforms and Python versions (unlike ``hash()``).

    Parameters
    ----------
    master_seed:
        Non-negative master seed for the whole run.
    purpose:
        Free-form label, e.g. ``"tensor:v2"`` or ``"noise:node3"``.

    Returns
    -------
    int
        A seed in ``[0, 2**63)``.
    """
    if master_seed < 0:
        raise ValueError(f"master_seed must be non-negative, got {master_seed}")
    digest = hashlib.sha256(f"{master_seed}:{purpose}".encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1


class RngStream:
    """A labelled, reproducible random stream.

    Thin wrapper over :class:`numpy.random.Generator` that records its
    provenance (master seed + purpose) for debugging and supports
    spawning child streams.
    """

    def __init__(self, master_seed: int, purpose: str) -> None:
        self.master_seed = master_seed
        self.purpose = purpose
        self._gen = np.random.default_rng(derive_seed(master_seed, purpose))

    def child(self, purpose: str) -> "RngStream":
        """Spawn an independent stream labelled ``purpose`` under this one."""
        return RngStream(self.master_seed, f"{self.purpose}/{purpose}")

    @property
    def generator(self) -> np.random.Generator:
        """The underlying NumPy generator."""
        return self._gen

    def standard_normal(self, shape) -> np.ndarray:
        """Standard-normal array of the given shape (float64)."""
        return self._gen.standard_normal(shape)

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        """Uniform samples in ``[low, high)``."""
        return self._gen.uniform(low, high, size)

    def integers(self, low: int, high: int, size=None):
        """Integer samples in ``[low, high)``."""
        return self._gen.integers(low, high, size=size)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle of a Python list."""
        self._gen.shuffle(seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.master_seed}, purpose={self.purpose!r})"
