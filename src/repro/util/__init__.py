"""Shared utilities: errors, seeded RNG streams, validation helpers.

Nothing in this package may touch wall-clock time or global random
state: determinism of the simulated world is a repo-wide invariant
(see DESIGN.md section 6).
"""

from repro.util.errors import (
    ReproError,
    SimulationError,
    DataflowError,
    ConfigurationError,
    GlobalArrayError,
)
from repro.util.rng import RngStream, derive_seed
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
)

__all__ = [
    "ReproError",
    "SimulationError",
    "DataflowError",
    "ConfigurationError",
    "GlobalArrayError",
    "RngStream",
    "derive_seed",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
]
