"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch
one base class. Subclasses partition the failure domains: simulation
kernel misuse, PTG dataflow contract violations, configuration problems,
and Global Arrays API misuse.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel.

    Raised for things like resuming a finished process, releasing a
    resource that is not held, or scheduling at a negative delay.
    """


class DataflowError(ReproError):
    """A PTG dataflow contract was violated.

    Examples: a task consumed an input no predecessor produces, a flow
    received two producers for the same data version, or a guard
    expression referenced an unknown parameter.
    """


class StallError(DataflowError):
    """A runtime stalled without completing its task graph.

    Subclass of :class:`DataflowError` so existing handlers keep
    working; the message carries a per-node diagnostic (ready-queue
    depths, NIC backlogs, liveness) plus the flows each stuck task is
    still waiting on. When fault injection is active the associated
    :class:`~repro.sim.faults.FaultReport` is attached as ``report``.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class TaskKilled(ReproError):
    """Thrown into a simulated task body to abort it (node crash).

    Raised by :func:`repro.sim.faults.killable` at the body's next
    yield point so its ``finally`` blocks run (releasing mutexes and
    other resources); task bodies must not swallow it.
    """


class ConfigurationError(ReproError):
    """Invalid experiment, cluster, or variant configuration."""


class GlobalArrayError(ReproError):
    """Misuse of the simulated Global Arrays API.

    Examples: out-of-bounds region access, accessing remote memory
    through ``ga_access`` (which is local-only), or operating on a
    destroyed array.
    """
