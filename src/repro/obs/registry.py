"""The metrics registry: labeled counters, gauges, histograms, phases.

Design constraints, in order of priority:

1. **Determinism.** Snapshots must be byte-identical across runs with
   the same seed: keys are sorted, histogram bucket edges are fixed at
   declaration time, and phase timers read the *virtual* clock (the
   engine's ``now``), never the host's. Nothing here touches wall-clock
   time.
2. **Zero cost when disabled.** Every mutating method begins with an
   ``enabled`` check before any label processing, so a disabled
   registry adds one attribute load and one branch per emit site — the
   big SYNTH performance sweeps run with metrics off and keep their
   speed.
3. **No engine interaction.** Emitting a metric never creates events,
   timeouts, or processes; virtual timings are bitwise identical with
   metrics on or off.

Labels follow the conventional ``name{key=value,...}`` rendering in
snapshots; label values are stringified, label keys sorted.
"""

from __future__ import annotations

import bisect
from typing import Callable, Optional, Sequence

__all__ = ["DEFAULT_BUCKET_EDGES", "MetricsRegistry", "NULL_METRICS"]

#: Fixed decade edges covering everything this system observes —
#: sub-microsecond overheads up to multi-gigabyte transfer volumes.
#: Shared default so histograms from different runs always align.
DEFAULT_BUCKET_EDGES: tuple[float, ...] = tuple(
    10.0 ** e for e in range(-9, 13)
)


def _key(name: str, labels: dict) -> tuple:
    if not labels:
        return (name,)
    return (name,) + tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render(key: tuple) -> str:
    if len(key) == 1:
        return key[0]
    inner = ",".join(f"{k}={v}" for k, v in key[1:])
    return f"{key[0]}{{{inner}}}"


class _Histogram:
    """Fixed-edge histogram: per-bucket counts plus count/sum/min/max."""

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges: Sequence[float]) -> None:
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)  # last bucket: +inf
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> dict:
        # only non-empty buckets, keyed by their upper edge — compact
        # and still deterministic (edges are fixed at declaration)
        buckets = {}
        for i, n in enumerate(self.counts):
            if n:
                le = self.edges[i] if i < len(self.edges) else "inf"
                buckets[str(le)] = n
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class _Phase:
    """Accumulated virtual time of one named run phase."""

    __slots__ = ("virtual_s", "count", "_open_at")

    def __init__(self) -> None:
        self.virtual_s = 0.0
        self.count = 0
        self._open_at: Optional[float] = None


class _PhaseContext:
    """Context manager returned by :meth:`MetricsRegistry.phase`."""

    __slots__ = ("_registry", "_name")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_PhaseContext":
        self._registry.phase_start(self._name)
        return self

    def __exit__(self, *exc) -> None:
        self._registry.phase_end(self._name)


class MetricsRegistry:
    """One run's worth of labeled metrics.

    ``clock`` supplies the phase timers' notion of time; the cluster
    wires it to the engine's virtual ``now``. The default clock is a
    constant 0.0, which makes phases record zero durations — harmless
    for registries used outside a simulation.
    """

    def __init__(
        self, enabled: bool = True, clock: Optional[Callable[[], float]] = None
    ) -> None:
        self.enabled = enabled
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, _Histogram] = {}
        self._phases: dict[str, _Phase] = {}

    # ------------------------------------------------------------------
    # emission API (every method no-ops when disabled)
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        if not self.enabled:
            return
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge_set(self, name: str, value: float, **labels) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        if not self.enabled:
            return
        self._gauges[_key(name, labels)] = value

    def gauge_max(self, name: str, value: float, **labels) -> None:
        """Raise the gauge to ``value`` if higher (high-water marks)."""
        if not self.enabled:
            return
        key = _key(name, labels)
        if value > self._gauges.get(key, float("-inf")):
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        edges: Sequence[float] = DEFAULT_BUCKET_EDGES,
        **labels,
    ) -> None:
        """Record ``value`` into the histogram ``name{labels}``.

        ``edges`` only takes effect the first time a histogram is seen;
        later observations reuse the declared edges (fixed buckets are
        what keep snapshots comparable across runs).
        """
        if not self.enabled:
            return
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = _Histogram(edges)
        histogram.observe(value)

    # ------------------------------------------------------------------
    # phase timers (virtual clock)
    # ------------------------------------------------------------------
    def phase(self, name: str) -> _PhaseContext:
        """Context manager timing one phase on the virtual clock.

        Phases accumulate: entering the same name again adds to its
        total. Nesting different names is fine; re-entering an open
        phase is an error caught by :meth:`phase_start`.
        """
        return _PhaseContext(self, name)

    def phase_start(self, name: str) -> None:
        if not self.enabled:
            return
        phase = self._phases.get(name)
        if phase is None:
            phase = self._phases[name] = _Phase()
        if phase._open_at is not None:
            raise ValueError(f"phase {name!r} started twice without ending")
        phase._open_at = self._clock()

    def phase_end(self, name: str) -> None:
        if not self.enabled:
            return
        phase = self._phases.get(name)
        if phase is None or phase._open_at is None:
            raise ValueError(f"phase {name!r} ended without a start")
        phase.virtual_s += self._clock() - phase._open_at
        phase.count += 1
        phase._open_at = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        """Current value of one counter (0.0 if never incremented)."""
        return self._counters.get(_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        """Current value of one gauge (None if never set)."""
        return self._gauges.get(_key(name, labels))

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label combinations."""
        return sum(v for k, v in self._counters.items() if k[0] == name)

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
            + len(self._phases)
        )

    def snapshot(self) -> dict:
        """Deterministic plain-dict export of everything recorded.

        Keys are sorted and rendered ``name{k=v,...}``; the result is
        JSON-serializable and byte-stable across identical runs.
        """
        return {
            "counters": {
                _render(k): self._counters[k] for k in sorted(self._counters)
            },
            "gauges": {_render(k): self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                _render(k): self._histograms[k].to_dict()
                for k in sorted(self._histograms)
            },
            "phases": {
                name: {"virtual_s": p.virtual_s, "count": p.count}
                for name, p in sorted(self._phases.items())
            },
        }


#: Shared always-disabled registry — the default wiring target for
#: components constructed outside a cluster. Never enable it.
NULL_METRICS = MetricsRegistry(enabled=False)
