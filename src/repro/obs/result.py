"""The common run-result protocol shared by every runtime.

:class:`~repro.parsec.runtime.ParsecResult`,
:class:`~repro.legacy.runtime.LegacyResult`, and
:class:`~repro.parsec.dtd.DtdResult` all inherit :class:`RunResult`, so
``repro.experiments`` and ``repro.analysis`` can consume any runtime's
outcome through one surface:

- ``execution_time`` — virtual seconds (a dataclass field everywhere);
- ``n_tasks`` — task/work-unit count (field or property per runtime);
- ``recovery_counters()`` — the nonzero-under-faults counters, as a
  dict keyed by counter name;
- ``metrics`` / ``report`` / ``output`` — the run's metrics snapshot,
  its :class:`~repro.obs.report.RunReport`, and the output tensor
  handle, attached by the :func:`repro.run` facade.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["RunResult"]


class RunResult:
    """Base/protocol for runtime results (not itself a dataclass).

    Subclasses are dataclasses that provide ``execution_time`` and
    ``n_tasks`` and list their fault-recovery fields in
    ``_recovery_fields``.
    """

    #: names of the subclass's recovery-counter fields
    _recovery_fields: tuple[str, ...] = ()

    # attached by the repro.run() facade (class-level defaults so
    # results produced by lower-level entry points still conform)
    metrics: Optional[dict] = None
    report: Optional[Any] = None
    output: Optional[Any] = None

    @property
    def runtime_name(self) -> str:
        """Short runtime identifier derived from the result type."""
        return type(self).__name__.removesuffix("Result").lower()

    def recovery_counters(self) -> dict[str, float]:
        """The fault-recovery counters, keyed by field name."""
        return {name: getattr(self, name) for name in self._recovery_fields}

    def summary(self) -> str:
        """One human line: runtime, task count, virtual time."""
        return (
            f"{self.runtime_name}: {self.n_tasks} tasks in "
            f"{self.execution_time:.4f}s (virtual)"
        )
