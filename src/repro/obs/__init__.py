"""repro.obs — the runtime-agnostic observability layer.

The paper's entire evaluation (Figures 9-13) rests on PaRSEC's
performance instrumentation module; this package is our equivalent of
the *counting* half of that module (the span half is
:mod:`repro.sim.trace`). It deliberately sits below every runtime:

- :class:`MetricsRegistry` — labeled counters, gauges (with high-water
  tracking), histograms with fixed deterministic bucket edges, and
  phase timers driven by the simulation's virtual clock. One registry
  lives on each :class:`~repro.sim.cluster.Cluster`; the Global Arrays
  substrate, the network, both runtimes, and the schedulers all emit
  into it. A disabled registry (``enabled=False``) is a pure no-op so
  the big SYNTH sweeps keep their speed.
- :class:`RunReport` — the schema-versioned, machine-readable record of
  one run (JSONL), joining configuration, metrics, phase timings, and
  trace-derived statistics. Deterministic: identical seeds produce
  byte-identical reports.
- :class:`RunResult` — the common protocol/base class shared by
  :class:`~repro.parsec.runtime.ParsecResult`,
  :class:`~repro.legacy.runtime.LegacyResult`, and
  :class:`~repro.parsec.dtd.DtdResult`, so analysis and experiment code
  stops special-casing the runtimes.

Everything here is pure bookkeeping: no method ever touches the
discrete-event engine, so virtual timings are bitwise identical whether
metrics are enabled or not.
"""

from repro.obs.registry import DEFAULT_BUCKET_EDGES, NULL_METRICS, MetricsRegistry
from repro.obs.report import RUN_REPORT_SCHEMA_VERSION, RunReport, read_jsonl, write_jsonl
from repro.obs.result import RunResult

__all__ = [
    "DEFAULT_BUCKET_EDGES",
    "NULL_METRICS",
    "MetricsRegistry",
    "RUN_REPORT_SCHEMA_VERSION",
    "RunReport",
    "RunResult",
    "read_jsonl",
    "write_jsonl",
]
