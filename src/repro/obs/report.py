"""Structured, schema-versioned run reports (JSONL).

A :class:`RunReport` is the machine-readable record of one execution:
which workload ran where, how long it took (virtual seconds), the full
metrics snapshot, phase timings, trace-derived statistics, and recovery
counters. One report serializes to one JSON line, so a file of runs is
a JSONL stream that ``python -m repro report`` emits and any tooling
can consume.

Determinism contract: every field is derived from the simulation's
virtual clock and counters — no wall-clock times, host names, or
process ids — so identical seeds produce byte-identical report lines.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

__all__ = ["RUN_REPORT_SCHEMA_VERSION", "RunReport", "read_jsonl", "write_jsonl"]

#: Bump when the serialized field set changes shape incompatibly.
RUN_REPORT_SCHEMA_VERSION = 1


@dataclass
class RunReport:
    """One run, fully described. ``schema`` pins the serialized shape."""

    runtime: str                 # 'legacy' | 'parsec' | 'dtd'
    workload: str                # e.g. 'icsd_t2_7'
    execution_time: float        # virtual seconds
    n_tasks: int
    variant: Optional[str] = None        # 'v1'..'v5' for PaRSEC runs
    scale: Optional[str] = None          # preset name, when known
    n_nodes: int = 0
    cores_per_node: int = 0
    data_mode: str = ""
    seed: Optional[int] = None
    #: phase timers: {name: {'virtual_s': float, 'count': int}}
    phases: dict = field(default_factory=dict)
    #: full MetricsRegistry snapshot (counters/gauges/histograms)
    metrics: dict = field(default_factory=dict)
    #: trace-derived statistics (startup idle, overlap, ...) — empty
    #: when the run was not traced
    trace_stats: dict = field(default_factory=dict)
    #: nonzero only under an installed fault plan
    recovery: dict = field(default_factory=dict)
    #: free-form extras (checksums, runtime-specific counters)
    extra: dict = field(default_factory=dict)
    schema: int = RUN_REPORT_SCHEMA_VERSION

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def to_json_line(self) -> str:
        """One compact, key-sorted JSON line (no trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, d: dict) -> "RunReport":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})

    @classmethod
    def from_json_line(cls, line: str) -> "RunReport":
        return cls.from_dict(json.loads(line))


def write_jsonl(reports: Iterable[RunReport], path: Union[str, Path]) -> Path:
    """Write one report per line; returns the path."""
    path = Path(path)
    path.write_text(
        "".join(report.to_json_line() + "\n" for report in reports)
    )
    return path


def read_jsonl(path: Union[str, Path]) -> list[RunReport]:
    """Inverse of :func:`write_jsonl` (blank lines skipped)."""
    reports = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            reports.append(RunReport.from_json_line(line))
    return reports
