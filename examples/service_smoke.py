"""Service smoke: kill the daemon mid-life, prove nothing is lost.

Drives the real ``python -m repro serve`` subprocess through the full
resilience story:

1. start the daemon with a fresh journal,
2. submit a tiny fig9 job and wait for it to finish,
3. SIGKILL the daemon — no graceful shutdown, no flush beyond the
   per-event fsync the journal already did,
4. restart the daemon over the same journal,
5. resubmit the same job and assert it is answered from the replayed
   result cache (``cached: true``, byte-identical payload) without
   re-running a single simulation.

Run from the repository root::

    PYTHONPATH=src python examples/service_smoke.py

Exit code 0 means the journal + replay + cache chain held end to end.
CI runs this on every push (the ``service-smoke`` job).
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.serve.client import ServiceClient
from repro.serve.journal import read_events

JOB_KIND = "fig9"
JOB_PARAMS = {"codes": ["v5"], "core_counts": [1], "scale": "tiny",
              "n_nodes": 2}


def start_daemon(journal: Path) -> tuple[subprocess.Popen, ServiceClient]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--journal", str(journal), "--jobs", "1"],
        stdout=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("serving on "):
            port = int(line.rsplit(":", 1)[1])
            return proc, ServiceClient(port=port, timeout_s=10.0)
        if proc.poll() is not None:
            raise SystemExit("daemon died during startup")
    proc.kill()
    raise SystemExit("daemon never announced readiness")


def main() -> int:
    journal = Path(tempfile.mkdtemp(prefix="repro-serve-")) / "journal.jsonl"

    print("=== first daemon: run the job for real")
    proc, client = start_daemon(journal)
    submitted = client.submit(JOB_KIND, JOB_PARAMS)
    print(f"submitted {submitted['job_id']} (cached={submitted['cached']})")
    first = client.wait(submitted["job_id"], timeout_s=300.0)
    assert first["status"] == "done", first
    assert not first["cached"]
    print(f"finished: {sorted(first['result'])}")

    print("=== SIGKILL the daemon (no graceful shutdown)")
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=10.0)
    events = [e["event"] for e in read_events(journal)]
    assert "daemon_stopped" not in events, "that was not a crash"
    print(f"journal after crash: {events}")

    print("=== second daemon: replay the journal")
    proc2, client2 = start_daemon(journal)
    try:
        again = client2.submit(JOB_KIND, JOB_PARAMS)
        print(f"resubmitted -> {again['job_id']} cached={again['cached']}")
        assert again["cached"], "replayed cache should have answered"
        assert again["status"] == "done"
        replayed = client2.result(again["job_id"])
        assert replayed["result"] == first["result"], "cache changed the bytes"
        view = client2.metrics()
        assert view["cache"]["hits"] >= 1
        print(f"metrics: cache={view['cache']} breaker={view['breaker']}")
    finally:
        proc2.send_signal(signal.SIGTERM)
        proc2.wait(timeout=15.0)
    assert read_events(journal)[-1]["event"] == "daemon_stopped"

    print(json.dumps({"smoke": "ok", "journal_events": len(read_events(journal))}))
    print("OK: completed job survived SIGKILL and served from cache")
    return 0


if __name__ == "__main__":
    os.chdir(Path(__file__).resolve().parents[1])
    sys.exit(main())
