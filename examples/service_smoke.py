"""Service smoke: kill a concurrent daemon mid-flight, prove nothing is lost.

Drives the real ``python -m repro serve`` subprocess through the full
resilience story, now with concurrent workers and journal compaction:

1. start the daemon with a fresh journal and ``--workers 2``,
2. submit three distinct fig9 jobs at once and SIGKILL the daemon while
   they are in flight — no graceful shutdown, no flush beyond the
   per-event fsync the journal already did,
3. restart the daemon over the same journal: every job recovers and
   finishes, and the journal holds exactly one ``job_finished`` per
   job — no job lost, no result duplicated,
4. resubmit each spec and assert it is answered from the replayed
   result cache (``cached: true``, byte-identical payload) without
   re-running a single simulation, then SIGTERM — the clean shutdown
   compacts the journal into one snapshot line,
5. start a third daemon over the *compacted* journal and assert it
   serves identical status and result payloads for every prior job id.

Run from the repository root::

    PYTHONPATH=src python examples/service_smoke.py

Exit code 0 means the journal + replay + cache + compaction chain held
end to end. CI runs this on every push (the ``service-smoke`` job).
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.serve.client import ServiceClient
from repro.serve.journal import read_events

JOB_KIND = "fig9"
#: three distinct jobs (different seeds -> different digests), several
#: cells each so the SIGKILL lands while work is genuinely in flight
JOB_PARAMS = [
    {"codes": ["v4", "v5"], "core_counts": [1, 2], "scale": "tiny",
     "n_nodes": 2, "seed": seed}
    for seed in (7, 8, 9)
]


def start_daemon(journal: Path) -> tuple[subprocess.Popen, ServiceClient]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--journal", str(journal), "--jobs", "2", "--workers", "2",
         "--compact-bytes", "65536"],
        stdout=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("serving on "):
            port = int(line.rsplit(":", 1)[1])
            return proc, ServiceClient(port=port, timeout_s=10.0)
        if proc.poll() is not None:
            raise SystemExit("daemon died during startup")
    proc.kill()
    raise SystemExit("daemon never announced readiness")


def main() -> int:
    journal = Path(tempfile.mkdtemp(prefix="repro-serve-")) / "journal.jsonl"

    print("=== first daemon: three concurrent jobs, then SIGKILL mid-flight")
    proc, client = start_daemon(journal)
    submitted = [client.submit(JOB_KIND, params) for params in JOB_PARAMS]
    job_ids = [s["job_id"] for s in submitted]
    print(f"submitted {job_ids}")
    # wait until at least one job has observably started, then kill —
    # some jobs may already be done, some mid-run, some still queued;
    # recovery has to absorb every mix
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        events = [e["event"] for e in read_events(journal)]
        if "job_started" in events:
            break
        time.sleep(0.02)
    else:
        raise SystemExit("no job ever started")
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=10.0)
    events = [e["event"] for e in read_events(journal)]
    assert "daemon_stopped" not in events, "that was not a crash"
    print(f"journal after crash: {events}")

    print("=== second daemon: replay, finish everything exactly once")
    proc2, client2 = start_daemon(journal)
    results = {}
    try:
        for job_id in job_ids:
            body = client2.wait(job_id, timeout_s=300.0)
            assert body["status"] == "done", body
            results[job_id] = body["result"]
        print(f"all {len(job_ids)} jobs done after restart")
        finished = [
            e for e in read_events(journal) if e["event"] == "job_finished"
        ]
        # exactly one finish per submitted job: recovered, never re-run
        # after completing, never lost
        assert sorted(e["job_id"] for e in finished) == sorted(job_ids), (
            "duplicate or missing job_finished records"
        )
        for params, job_id in zip(JOB_PARAMS, job_ids):
            again = client2.submit(JOB_KIND, params)
            assert again["cached"], "replayed cache should have answered"
            hit = client2.result(again["job_id"])
            assert hit["result"] == results[job_id], "cache changed the bytes"
        view = client2.metrics()
        assert view["cache"]["hits"] >= 3
        assert view["workers"] == 2
        print(f"metrics: cache={view['cache']} journal={view['journal']}")
    finally:
        proc2.send_signal(signal.SIGTERM)
        proc2.wait(timeout=15.0)
    events = read_events(journal)
    assert events[-1]["event"] == "daemon_stopped"
    # the clean shutdown folded the whole history into one snapshot line
    assert "snapshot" in [e["event"] for e in events], "no compaction ran"
    print(f"journal compacted to {len(events)} events "
          f"({journal.stat().st_size} bytes)")

    print("=== third daemon: serve identical payloads from the snapshot")
    proc3, client3 = start_daemon(journal)
    try:
        for job_id, result in results.items():
            status = client3.status(job_id)
            assert status["status"] == "done", status
            body = client3.result(job_id)
            assert body["result"] == result, (
                f"compacted replay changed the bytes of {job_id}"
            )
    finally:
        proc3.send_signal(signal.SIGTERM)
        proc3.wait(timeout=15.0)

    print(json.dumps({"smoke": "ok",
                      "journal_events": len(read_events(journal))}))
    print("OK: three concurrent jobs survived SIGKILL; the compacted "
          "journal serves identical results")
    return 0


if __name__ == "__main__":
    os.chdir(Path(__file__).resolve().parents[1])
    sys.exit(main())
