"""Explore the paper's five algorithmic variants on one machine.

Runs icsd_t2_7 through all variants of Section IV-A/V on a simulated
32-node cluster at a chosen core count, prints the Figure 9 column for
that core count, and summarizes what each variant changes.

Run:  python examples/variant_explorer.py [cores_per_node] [scale]
e.g.  python examples/variant_explorer.py 15 paper
"""

import sys

from repro.analysis.report import format_table
import repro
from repro.core.variants import PAPER_VARIANTS
from repro.experiments.calibration import make_cluster, make_workload


def main() -> None:
    cores = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"

    rows = []
    cluster = make_cluster(cores)
    workload = make_workload(cluster, scale=scale)
    print(f"workload: {workload.subroutine.describe()}")
    print(f"machine: 32 nodes x {cores} cores/node (+1 comm thread each)\n")

    legacy = repro.run(workload, runtime="legacy")
    rows.append(
        [
            "original",
            f"{legacy.execution_time:.3f}",
            "-",
            "chain-stealing via NXTVAL, blocking GETs",
        ]
    )

    for name, variant in sorted(PAPER_VARIANTS.items()):
        cluster = make_cluster(cores)
        workload = make_workload(cluster, scale=scale)
        run = repro.run(workload, variant=variant)
        rows.append(
            [
                name,
                f"{run.execution_time:.3f}",
                str(run.n_tasks),
                variant.describe().split(": ", 1)[1],
            ]
        )

    print(
        format_table(
            ["code", "time (s)", "tasks", "organization"],
            rows,
            title=f"icsd_t2_7 at {cores} cores/node, scale={scale}",
        )
    )

    fastest = min(rows[1:], key=lambda r: float(r[1]))
    print(
        f"\nfastest variant: {fastest[0]} "
        f"({float(rows[0][1]) / float(fastest[1]):.2f}x over the original)"
    )


if __name__ == "__main__":
    main()
