"""Structural analysis of the variants' task graphs.

The paper argues variant behaviour from structure: serial GEMM chains
(v1) trade parallelism for locality, segmented chains (v2-v5) invert
the trade. With the task graph materialized as a networkx DAG we can
*measure* that structure without running anything: total work, critical
path (span), and the work/span bound on useful parallelism.

Also exports a Chrome trace of a v5 run — open it at
https://ui.perfetto.dev or chrome://tracing to browse the simulated
execution the way the paper's authors browsed theirs.

Run:  python examples/dag_analysis.py
"""

import os
import tempfile

from repro.analysis.chrome_trace import write_chrome_trace
from repro.analysis.dag import profile_task_graph
from repro.analysis.report import format_table
import repro
from repro.core.inspector import inspect_subroutine
from repro.core.ptg_build import build_ccsd_ptg
from repro.core.variants import PAPER_VARIANTS
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.tce.molecules import small_system
from repro.tce.t2_7 import build_t2_7


def make_setup():
    cluster = Cluster(
        ClusterConfig(n_nodes=8, cores_per_node=4, data_mode=DataMode.SYNTH)
    )
    ga = GlobalArrays(cluster)
    workload = build_t2_7(cluster, ga, small_system().orbital_space())
    return cluster, workload


def main() -> None:
    rows = []
    for name, variant in sorted(PAPER_VARIANTS.items()):
        cluster, workload = make_setup()
        md = inspect_subroutine(workload.subroutine, cluster, variant)
        graph = build_ccsd_ptg(variant, md).instantiate(md, cluster.n_nodes)
        profile = profile_task_graph(graph, cluster.machine)
        rows.append(
            [
                name,
                str(profile.n_tasks),
                str(profile.n_edges),
                f"{profile.total_work * 1e3:.1f}",
                f"{profile.critical_path * 1e3:.2f}",
                f"{profile.average_parallelism:.0f}",
            ]
        )
    print(
        format_table(
            ["variant", "tasks", "edges", "work (ms)", "span (ms)", "work/span"],
            rows,
            title="Task-graph structure per variant (small system, 8 nodes)",
        )
    )
    print(
        "\nReading: v1's serial chains give it a much longer span (and a\n"
        "much lower work/span parallelism bound) than the parallel variants —\n"
        "the structural reason the paper finds 'parallelism between GEMMs is\n"
        "more significant than locality', and the gap widens with chain length."
    )

    # export a browsable trace of the winning variant
    cluster, workload = make_setup()
    repro.run(workload, variant=PAPER_VARIANTS["v5"])
    path = os.path.join(tempfile.gettempdir(), "repro_v5_trace.json")
    write_chrome_trace(cluster.trace, path)
    print(f"\nChrome trace of the v5 run written to {path}")
    print("open it at chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
