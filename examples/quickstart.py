"""Quickstart: run the CCSD t2_7 kernel both ways and compare.

Builds a small beta-carotene-like workload with real data on a
simulated 8-node cluster, executes it through the legacy NWChem-style
runtime and through PaRSEC (variant v5), and verifies both produce the
same correlation energy while PaRSEC finishes faster.

Run:  python examples/quickstart.py
"""

from repro.core.executor import run_over_parsec
from repro.core.variants import V5
from repro.ga.runtime import GlobalArrays
from repro.legacy.runtime import LegacyRuntime
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.tce.molecules import small_system
from repro.tce.reference import correlation_energy
from repro.tce.t2_7 import build_t2_7


def make_setup():
    """A fresh simulated 8-node machine with the t2_7 workload on it."""
    cluster = Cluster(
        ClusterConfig(n_nodes=8, cores_per_node=4, data_mode=DataMode.REAL)
    )
    ga = GlobalArrays(cluster)
    workload = build_t2_7(cluster, ga, small_system().orbital_space(), seed=7)
    return cluster, ga, workload


def main() -> None:
    # --- the original coarse-grain execution ------------------------
    cluster, ga, workload = make_setup()
    print(f"workload: {workload.subroutine.describe()}")
    legacy = LegacyRuntime(cluster, ga).execute_subroutine(workload.subroutine)
    legacy_energy = correlation_energy(workload.i2.flat_values())
    print(
        f"legacy (NXTVAL stealing, blocking GETs): "
        f"{legacy.execution_time:.4f}s virtual, "
        f"{legacy.chains_executed} chains on {legacy.n_ranks} ranks"
    )

    # --- the same kernel over PaRSEC (variant v5) -------------------
    cluster, ga, workload = make_setup()
    run = run_over_parsec(cluster, workload.subroutine, V5)
    parsec_energy = correlation_energy(workload.i2.flat_values())
    print(
        f"PaRSEC v5 (parallel GEMMs, one SORT, one WRITE): "
        f"{run.execution_time:.4f}s virtual, {run.result.n_tasks} tasks, "
        f"{run.result.messages_remote} remote messages"
    )

    # --- the paper's correctness check -------------------------------
    print(f"correlation energy (legacy): {legacy_energy:+.15e}")
    print(f"correlation energy (PaRSEC): {parsec_energy:+.15e}")
    rel = abs(parsec_energy - legacy_energy) / abs(legacy_energy)
    print(f"relative difference: {rel:.2e}  (paper: agreement to the 14th digit)")
    speedup = legacy.execution_time / run.execution_time
    print(f"PaRSEC speedup over legacy on this configuration: {speedup:.2f}x")


if __name__ == "__main__":
    main()
