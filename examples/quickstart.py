"""Quickstart: run the CCSD t2_7 kernel both ways and compare.

Builds a small beta-carotene-like workload with real data on a
simulated 8-node cluster, executes it through the legacy NWChem-style
runtime and through PaRSEC (variant v5) via the unified ``repro.run``
facade, and verifies both produce the same correlation energy while
PaRSEC finishes faster.

Run:  python examples/quickstart.py
"""

import repro
from repro.tce.reference import correlation_energy


def main() -> None:
    config = repro.RunConfig(n_nodes=8, cores_per_node=4, seed=7)

    # --- the original coarse-grain execution ------------------------
    legacy = repro.run("small", runtime="legacy", config=config)
    legacy_energy = correlation_energy(legacy.output.flat_values())
    print(
        f"legacy (NXTVAL stealing, blocking GETs): "
        f"{legacy.execution_time:.4f}s virtual, "
        f"{legacy.chains_executed} chains on {legacy.n_ranks} ranks"
    )

    # --- the same kernel over PaRSEC (variant v5) -------------------
    parsec = repro.run("small", runtime="parsec", variant=repro.V5, config=config)
    parsec_energy = correlation_energy(parsec.output.flat_values())
    print(
        f"PaRSEC v5 (parallel GEMMs, one SORT, one WRITE): "
        f"{parsec.execution_time:.4f}s virtual, {parsec.n_tasks} tasks, "
        f"{parsec.messages_remote} remote messages"
    )

    # --- the structured run report -----------------------------------
    phases = ", ".join(
        f"{name}={p['virtual_s']:.4f}s" for name, p in parsec.report.phases.items()
    )
    print(f"PaRSEC phases (virtual): {phases}")

    # --- the paper's correctness check -------------------------------
    print(f"correlation energy (legacy): {legacy_energy:+.15e}")
    print(f"correlation energy (PaRSEC): {parsec_energy:+.15e}")
    rel = abs(parsec_energy - legacy_energy) / abs(legacy_energy)
    print(f"relative difference: {rel:.2e}  (paper: agreement to the 14th digit)")
    speedup = legacy.execution_time / parsec.execution_time
    print(f"PaRSEC speedup over legacy on this configuration: {speedup:.2f}x")


if __name__ == "__main__":
    main()
