"""Gradual porting of a CC iteration — the paper's integration story.

"The conversion from CGP to task based execution can happen gradually.
Performance critical parts of an application can be selectively ported
to execute over PaRSEC and then be re-integrated seamlessly into the
larger application which is oblivious to this transformation."

This example assembles a full CCSD iteration (fourteen TCE sub-kernels
over seven barrier-separated levels) and runs it three ways on the same
simulated machine:

1. fully legacy (the original NWChem execution model),
2. partially ported (only ``icsd_t2_7`` and the two expensive ladder
   terms run over PaRSEC, as in the paper's incremental approach),
3. fully ported.

All three produce the same correlation energy; the timings show the
porting payoff growing with coverage.

Run:  python examples/mixed_cc_iteration.py
"""

from repro.analysis.report import format_table
from repro.core.integration import NwchemDriver
from repro.core.variants import V5
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.tce.cc_iteration import build_ccsd_iteration
from repro.tce.molecules import small_system
from repro.tce.reference import correlation_energy


def run_iteration(parsec_kernels, label):
    cluster = Cluster(
        ClusterConfig(n_nodes=8, cores_per_node=4, data_mode=DataMode.REAL)
    )
    ga = GlobalArrays(cluster)
    iteration = build_ccsd_iteration(ga, small_system().orbital_space(), seed=7)
    driver = NwchemDriver(cluster, ga, variant=V5, parsec_kernels=parsec_kernels)
    result = driver.run(iteration.subroutines)
    energy = correlation_energy(iteration.i2.flat_values())
    ported = sum(1 for k in result.kernels if k.mode == "parsec")
    return {
        "label": label,
        "time": result.execution_time,
        "ported": f"{ported}/{len(result.kernels)}",
        "energy": energy,
        "kernels": result.kernels,
    }


def main() -> None:
    runs = [
        run_iteration(set(), "fully legacy"),
        run_iteration(
            {"icsd_t2_7", "icsd_t2_8", "icsd_t2_13"}, "t2_7 + ladders over PaRSEC"
        ),
        run_iteration(None, "fully ported"),
    ]

    print(
        format_table(
            ["configuration", "kernels ported", "iteration time (s)", "speedup"],
            [
                [
                    run["label"],
                    run["ported"],
                    f"{run['time']:.4f}",
                    f"{runs[0]['time'] / run['time']:.2f}x",
                ]
                for run in runs
            ],
            title="One CCSD iteration, 8 nodes x 4 cores (virtual time)",
        )
    )

    print("\nper-kernel timings of the partially ported run:")
    for kernel in runs[1]["kernels"]:
        print(f"  {kernel.name:12s} [{kernel.mode:6s}] {kernel.duration:.4f}s")

    print("\ncorrelation energies (must agree to the 14th digit):")
    for run in runs:
        print(f"  {run['label']:28s} {run['energy']:+.15e}")
    spread = max(r["energy"] for r in runs) - min(r["energy"] for r in runs)
    print(f"  absolute spread: {abs(spread):.2e}")


if __name__ == "__main__":
    main()
