"""Authoring a PTG by hand — the paper's Figure 1, in Python.

The paper's Figure 1 shows the ``.jdf`` source of a GEMM task class
whose instances form serial chains: the first GEMM of each chain
receives its C matrix from DFILL, every GEMM forwards C to its
successor, and the last one sends it to SORT. Figure 2 shows the
one-line change that turns the chain into parallel GEMMs feeding a
reduction.

This example builds both task graphs directly against the public
PaRSEC API (no TCE involved), runs them on a simulated 4-node cluster,
and shows the dataflow ordering and the parallelism difference.

Run:  python examples/custom_ptg.py
"""

from types import SimpleNamespace

from repro.parsec import PTG, Dep, Flow, FlowMode, ParsecRuntime, TaskClass
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.cost import OpCost
from repro.sim.trace import TaskCategory

N_CHAINS = 6
CHAIN_LEN = 5
GEMM_SECONDS = 0.1


def body(duration, log=None):
    """A task body: burn core time, forward an incremented counter."""

    def run(ctx):
        yield from ctx.charge(OpCost(duration, 0.0))
        if log is not None:
            log.append((ctx.task.label, ctx.cluster.engine.now))
        ctx.outputs["C"] = (ctx.inputs.get("C") or 0) + 1

    return run


def unit(params, md):
    return 1


def build_chained_ptg(log) -> PTG:
    """Figure 1: GEMMs organized in serial chains."""
    ptg = PTG("figure1")
    ptg.add(
        TaskClass(
            name="DFILL",
            params=("L1",),
            domain=lambda md: [(L1,) for L1 in range(md.size_L1)],
            placement=lambda p, md: p[0] % md.n_nodes,
            run=body(0.01, log),
            category=TaskCategory.DFILL,
            flows=[
                Flow(
                    "C",
                    FlowMode.WRITE,
                    unit,
                    outputs=[Dep("GEMM", lambda p, md: (p[0], 0), "C")],
                )
            ],
        )
    )
    ptg.add(
        TaskClass(
            name="GEMM",
            params=("L1", "L2"),
            domain=lambda md: [
                (L1, L2) for L1 in range(md.size_L1) for L2 in range(md.size_L2)
            ],
            placement=lambda p, md: p[0] % md.n_nodes,
            run=body(GEMM_SECONDS, log),
            category=TaskCategory.GEMM,
            # "; mtdata->size_L1 - L1 + P" — decreasing with chain number
            priority=lambda p, md: md.size_L1 - p[0] + md.n_nodes,
            flows=[
                Flow(
                    "C",
                    FlowMode.RW,
                    unit,
                    inputs=[
                        # RW C <- (L2 == 0) ? C DFILL(L1)
                        Dep(
                            "DFILL",
                            lambda p, md: (p[0],),
                            "C",
                            guard=lambda p, md: p[1] == 0,
                        ),
                        #      <- (L2 != 0) ? C GEMM(L1, L2-1)
                        Dep(
                            "GEMM",
                            lambda p, md: (p[0], p[1] - 1),
                            "C",
                            guard=lambda p, md: p[1] != 0,
                        ),
                    ],
                    outputs=[
                        # -> (L2 < size_L2-1) ? C GEMM(L1, L2+1)
                        Dep(
                            "GEMM",
                            lambda p, md: (p[0], p[1] + 1),
                            "C",
                            guard=lambda p, md: p[1] < md.size_L2 - 1,
                        ),
                        # -> (L2 == size_L2-1) ? C SORT(L1)
                        Dep(
                            "SORT",
                            lambda p, md: (p[0],),
                            "C",
                            guard=lambda p, md: p[1] == md.size_L2 - 1,
                        ),
                    ],
                )
            ],
        )
    )
    ptg.add(
        TaskClass(
            name="SORT",
            params=("L1",),
            domain=lambda md: [(L1,) for L1 in range(md.size_L1)],
            placement=lambda p, md: p[0] % md.n_nodes,
            run=body(0.02, log),
            category=TaskCategory.SORT,
            flows=[
                Flow(
                    "C",
                    FlowMode.READ,
                    unit,
                    inputs=[Dep("GEMM", lambda p, md: (p[0], md.size_L2 - 1), "C")],
                )
            ],
        )
    )
    return ptg


def build_parallel_ptg(log) -> PTG:
    """Figure 2's change: ``WRITE C -> A REDUCTION(L1, L2)``."""
    ptg = PTG("figure2")
    ptg.add(
        TaskClass(
            name="GEMM",
            params=("L1", "L2"),
            domain=lambda md: [
                (L1, L2) for L1 in range(md.size_L1) for L2 in range(md.size_L2)
            ],
            placement=lambda p, md: p[0] % md.n_nodes,
            run=body(GEMM_SECONDS, log),
            category=TaskCategory.GEMM,
            flows=[
                Flow(
                    "C",
                    FlowMode.WRITE,  # private C, created by the task
                    unit,
                    outputs=[Dep("REDUCTION", lambda p, md: (p[0],), "A")],
                )
            ],
        )
    )

    def reduction_run(ctx):
        yield from ctx.charge(OpCost(0.02, 0.0))
        pieces = ctx.inputs["A"]
        total = sum(pieces) if isinstance(pieces, list) else pieces
        log.append((ctx.task.label, ctx.cluster.engine.now))
        ctx.outputs["C"] = total

    ptg.add(
        TaskClass(
            name="REDUCTION",
            params=("L1",),
            domain=lambda md: [(L1,) for L1 in range(md.size_L1)],
            placement=lambda p, md: p[0] % md.n_nodes,
            run=reduction_run,
            category=TaskCategory.REDUCE,
            flows=[
                Flow(
                    "A",
                    FlowMode.READ,
                    unit,
                    inputs=[
                        Dep(
                            "GEMM",
                            (lambda p, md, L2=L2: (p[0], L2)),
                            "C",
                            guard=(lambda p, md, L2=L2: L2 < md.size_L2),
                        )
                        for L2 in range(CHAIN_LEN)
                    ],
                )
            ],
        )
    )
    return ptg


def run(ptg_builder, label):
    log = []
    ptg = ptg_builder(log)
    cluster = Cluster(ClusterConfig(n_nodes=4, cores_per_node=4))
    md = SimpleNamespace(size_L1=N_CHAINS, size_L2=CHAIN_LEN, n_nodes=4)
    result = ParsecRuntime(cluster).execute(ptg, md)
    print(f"{label}: {result.n_tasks} tasks in {result.execution_time:.3f}s virtual")
    return result.execution_time, log


def main() -> None:
    chained_time, chained_log = run(build_chained_ptg, "Figure 1 (serial chains)")
    first_chain = [entry for entry in chained_log if entry[0].startswith("GEMM(0")]
    print("  chain 0 executed in order:", [label for label, _ in first_chain])

    parallel_time, _ = run(build_parallel_ptg, "Figure 2 (parallel + reduction)")
    print(
        f"  parallelizing the GEMMs was a one-line dataflow change and ran "
        f"{chained_time / parallel_time:.2f}x faster on the same machine"
    )


if __name__ == "__main__":
    main()
