"""Chaos demo: crash a node mid-run and still get the same answer.

Runs the t2_7 kernel over PaRSEC (variant v4) three times on a
simulated 4-node cluster with real data:

1. fault-free, to establish the reference tensor and timeline;
2. under a seeded FaultPlan that fails task attempts, drops/delays/
   duplicates messages, slows one node, and crashes another mid-run;
3. under the *same* plan again, to show the whole ordeal — faults,
   retransmissions, re-executions and all — is deterministic.

The faulted runs must finish, report what recovery work they did, and
produce a tensor bitwise identical to the fault-free reference (ordered
accumulation makes the floating-point sums order-independent across
recovery schedules). ``python -m repro chaos`` runs this check across
the legacy runtime and all five variants.

Run:  python examples/chaos_demo.py
"""

import numpy as np

import repro
from repro.core.variants import V4
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.faults import FaultPlan, NodeCrash, Straggler
from repro.tce.molecules import tiny_system
from repro.tce.t2_7 import build_t2_7


def run_once(plan=None):
    """One fresh simulated run; returns (i2 tensor, end time, result)."""
    cluster = Cluster(
        ClusterConfig(n_nodes=4, cores_per_node=2, data_mode=DataMode.REAL)
    )
    ga = GlobalArrays(cluster)
    workload = build_t2_7(cluster, ga, tiny_system().orbital_space(), seed=7)
    # bitwise equivalence needs a canonical accumulation order (float
    # addition is not commutative in rounding); enable it on every run
    workload.i2.array.enable_ordered_accumulation()
    if plan is not None:
        cluster.install_faults(plan)
    result = repro.run(workload, variant=V4)
    return workload.i2.flat_values(), cluster.engine.now, result


def main() -> None:
    # --- fault-free reference ----------------------------------------
    reference, horizon, clean = run_once()
    print(f"fault-free: {clean.execution_time:.4f}s virtual, {clean.n_tasks} tasks")

    # --- the same run under fire -------------------------------------
    plan = FaultPlan(
        master_seed=2025,
        task_fail_prob=0.05,      # transient task-body failures
        drop_prob=0.04,           # lost on the wire -> retransmitted
        delay_prob=0.04,
        dup_prob=0.03,            # discarded by sequence number
        stragglers=(Straggler(node=2, t_start=0.2 * horizon,
                              t_end=0.7 * horizon, factor=2.5),),
        crashes=(NodeCrash(node=1, at=0.45 * horizon),),
    )
    print(f"fault plan: {plan.describe()}")
    values_a, end_a, faulted = run_once(plan)
    print(
        f"faulted:    {end_a:.4f}s virtual — "
        f"{faulted.task_retries} task retries, "
        f"{faulted.retransmits} retransmits, "
        f"{faulted.tasks_reassigned} tasks re-homed off the dead node "
        f"({faulted.tasks_recomputed} of them mid-flight), "
        f"{faulted.recovery_overhead_s * 1e6:.1f}us recovery overhead"
    )

    # --- the acceptance checks ---------------------------------------
    values_b, end_b, _ = run_once(plan)
    bitwise = np.array_equal(values_a, reference)
    deterministic = end_a == end_b and np.array_equal(values_a, values_b)
    print(f"bitwise match with fault-free reference: {bitwise}")
    print(f"same-seed faulted runs identical:        {deterministic}")
    if not (bitwise and deterministic):
        raise SystemExit("chaos demo FAILED")
    print("recovered, exactly once, deterministically.")


if __name__ == "__main__":
    main()
