"""Reproduce the paper's trace figures as ASCII Gantt charts.

Generates the Figure 10 (v4, priorities), Figure 11 (v2, no
priorities), and Figure 12 (original code) traces on a simulated
cluster and renders them side by side, plus the metrics the paper reads
off them.

Run:  python examples/trace_gallery.py [scale]
"""

import sys

from repro.experiments.traces import comm_vs_gemm_share, run_fig10_11, run_fig12_13


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    n_nodes = 8 if scale in ("tiny", "small") else 32

    v4, v2 = run_fig10_11(scale=scale, n_nodes=n_nodes)
    original = run_fig12_13(scale=scale, n_nodes=n_nodes)

    for experiment, figure in ((v4, "Figure 10"), (v2, "Figure 11")):
        print(f"=== {figure}: {experiment.name}")
        print(
            f"    time={experiment.execution_time:.4f}s  "
            f"startup idle={100 * experiment.startup_idle:.1f}%"
        )
        print(experiment.gantt(width=100, max_rows=7))
        print()

    print(f"=== Figure 12/13: {original.name}")
    print(
        f"    time={original.execution_time:.4f}s  "
        f"in-rank comm/compute overlap={100 * original.overlap:.0f}%  "
        f"blocking data movement={100 * original.comm_fraction:.1f}% of busy time  "
        f"comm-vs-GEMM span ratio={comm_vs_gemm_share(original):.2f}x"
    )
    print(original.gantt(width=100, max_rows=7))
    print()
    print(
        "Reading the charts: in the v2 trace the left edge is blank (grey in\n"
        "the paper) — the un-prioritized READ tasks flooded the network and\n"
        "the workers idle until matched operands arrive. The original-code\n"
        "trace shows c/w (GET/ADD_HASH_BLOCK) boxes between every pair of\n"
        "G (GEMM) boxes on the same row: communication interleaved with\n"
        "computation but never overlapped."
    )


if __name__ == "__main__":
    main()
